(* M-rules: domain-safety analysis over the typed tree (DESIGN.md §13).

   The ROADMAP's sharded multicore engine needs an exact inventory of
   the simulator's mutable state before anything runs on two domains:
   every `ref`, toplevel table, and record with mutable fields is a
   potential data race once event processing is sharded. The parse pass
   cannot build that inventory — `type t = { mutable n : int }` hides
   behind aliases, `include`, and module boundaries — so this pass
   walks *typed* trees instead: the `.cmt` files dune already produces
   (every module is compiled with `-bin-annot`), read back with
   `Cmt_format.read_cmt`. Types are fully resolved there, so
   `Stats.acc` being secretly an `int ref` is visible no matter how
   many abbreviations sit in between.

   Three rules, all driven from the checked-in ownership registry
   `tools/lint/ownership.sexp`:

   M1  registry hygiene — every entry must name an existing inventory
       item (stale entries rot the shard-readiness map), carry one of
       the three ownership classes, a non-empty justification, and no
       item may appear twice.
   M2  a closure that captures `shard_owned` state must not escape its
       defining module: passing a lambda that touches shard state to a
       foreign module's function is exactly the future `Domain.spawn`
       hazard (the callee may stash the closure and run it on another
       domain). Calls into `Stdlib` and `Util.Tbl` are exempt — their
       higher-order functions are immediate iterators — as are calls to
       modules defined inside the same compilation unit. `Domain` and
       `Thread` are NOT exempt despite living in the stdlib: handing
       them a closure is the hazard itself.
   M3  unregistered toplevel mutable state is banned outright: every
       item the inventory finds must have a registry entry. This is the
       ratchet — new shared mutables cannot land without a reviewed
       ownership claim.

   Ownership classes (what the multicore PR will enforce at runtime):

     domain_local     one copy per domain (or debug-only state that is
                      never read across domains); no synchronization.
     shard_owned      owned by exactly one shard; other shards may only
                      reach it via message passing. M2 patrols these.
     shared_readonly  written only during setup, read-only once the
                      event loop starts; safe to share frozen.

   Inventory = every toplevel value binding in `lib/` whose type
   *mentions* a mutable type: a builtin mutable head (`ref`, `array`,
   `bytes`, `Hashtbl.t`, `Buffer.t`, `Queue.t`, `Atomic.t`, Bigarray,
   …) or a locally-declared type that is mutable by the transitive
   fixpoint (a record with a `mutable` field, or any type whose
   manifest / fields / constructor arguments reach one). Function
   bindings are values, not state — but a function whose definition
   spine carries `let r = ref … in fun …` captures that ref forever,
   so those count too. Registry items are dotted paths as a reader
   would write them: `Congestion.Waterfill.dbg`. *)

type ownership = Domain_local | Shard_owned | Shared_readonly

let ownership_of_string = function
  | "domain_local" -> Some Domain_local
  | "shard_owned" -> Some Shard_owned
  | "shared_readonly" -> Some Shared_readonly
  | _ -> None

let ownership_name = function
  | Domain_local -> "domain_local"
  | Shard_owned -> "shard_owned"
  | Shared_readonly -> "shared_readonly"

(* -- the ownership registry (mini sexp reader) ---------------------------- *)

(* `tools/lint/ownership.sexp` is a list of entries:

       ((item Congestion.Waterfill.dbg)
        (class domain_local)
        (why "debug counters; each domain keeps its own"))

   Parsed with a ~60-line reader rather than a sexp library (the repo
   deliberately has no ppx / sexplib dependency). A semicolon starts a
   comment to end of line; strings are double-quoted with backslash
   escapes. Syntax errors are internal errors (exit 2) — a broken
   registry must not read as zero violations. *)

type sexp = Atom of string * int | Slist of sexp list * int

let parse_sexps ~file src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 in
  let fail msg = raise (Lint_core.Internal (Printf.sprintf "%s:%d: %s" file !line msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () =
    if !pos < n then begin
      if src.[!pos] = '\n' then incr line;
      incr pos
    end
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        while peek () <> None && peek () <> Some '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let read_string () =
    let start_line = !line in
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Atom (Buffer.contents buf, start_line)
  in
  let read_atom () =
    let start = !pos and start_line = !line in
    let stop = function
      | None | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') -> true
      | Some _ -> false
    in
    while not (stop (peek ())) do
      advance ()
    done;
    if !pos = start then fail "empty atom";
    Atom (String.sub src start (!pos - start), start_line)
  in
  let rec read_sexp () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '(' ->
        let start_line = !line in
        advance ();
        let items = ref [] in
        let rec items_loop () =
          skip_ws ();
          match peek () with
          | None -> fail "unterminated '('"
          | Some ')' -> advance ()
          | Some _ ->
              items := read_sexp () :: !items;
              items_loop ()
        in
        items_loop ();
        Slist (List.rev !items, start_line)
    | Some ')' -> fail "unmatched ')'"
    | Some '"' -> read_string ()
    | Some _ -> read_atom ()
  in
  let out = ref [] in
  skip_ws ();
  while peek () <> None do
    out := read_sexp () :: !out;
    skip_ws ()
  done;
  List.rev !out

type reg_entry = {
  r_item : string;
  r_class : string;  (* raw; validated by M1 so a typo is a violation, not a crash *)
  r_why : string;
  r_key : string option;
      (* shard_owned only: the handler argument the sharding key is
         derived from (e.g. `(key node)`); E1 checks writes against it *)
  r_line : int;
}

type registry = { reg_file : string; entries : reg_entry list }

let load_registry_src ~file src =
  let entry_of = function
    | Slist (fields, line) ->
        let field key =
          List.find_map
            (function
              | Slist ([ Atom (k, _); Atom (v, _) ], _) when k = key -> Some v
              | _ -> None)
            fields
        in
        let need key =
          match field key with
          | Some v -> v
          | None ->
              raise
                (Lint_core.Internal
                   (Printf.sprintf "%s:%d: registry entry is missing '(%s …)'" file line key))
        in
        {
          r_item = need "item";
          r_class = need "class";
          r_why = need "why";
          r_key = field "key";
          r_line = line;
        }
    | Atom (_, line) ->
        raise
          (Lint_core.Internal
             (Printf.sprintf "%s:%d: expected a '((item …) (class …) (why …))' entry" file
                line))
  in
  { reg_file = file; entries = List.map entry_of (parse_sexps ~file src) }

let load_registry file = load_registry_src ~file (Lint_core.read_file file)

(* -- compilation units --------------------------------------------------- *)

type unit_info = {
  u_name : string;  (* display name, e.g. "Congestion.Waterfill" *)
  u_file : string;  (* source path for violation locations *)
  u_str : Typedtree.structure;
}

(* "Sim__Net" → "Sim.Net"; dune's wrapped-library mangling undone so
   registry items read like source code. *)
let display_name modname =
  let buf = Buffer.create (String.length modname) in
  let n = String.length modname in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && modname.[!i] = '_' && modname.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf modname.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let load_unit path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      raise
        (Lint_core.Internal
           (Printf.sprintf "cannot read %s: %s" path (Printexc.to_string exn)))
  | cmt -> (
      match (cmt.cmt_annots, cmt.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some src
        when not (Filename.check_suffix src "-gen") ->
          (* "-gen" sources are dune's generated wrapped-library alias
             modules (`sim.ml-gen`): pure aliases, nothing to inventory. *)
          Some { u_name = display_name cmt.cmt_modname; u_file = src; u_str = str }
      | _ -> None)

(* Pre-flight diagnosis of --cmt-root, run before any .cmt is parsed so
   lint_main can exit 2 with one line instead of an exception trace.
   dune copies sources next to the .cmt output (`_build/default/lib`
   holds both `foo.ml` and `.objs/byte/…__Foo.cmt`), so freshness is
   judged by pairing each `.ml` with the newest same-named `.cmt` by
   mtime. Returns [Some diagnostic] if the root is missing, empty, or
   stale. *)
let cmt_root_problem ~cmt_root =
  if not (Sys.file_exists cmt_root && Sys.is_directory cmt_root) then
    Some
      (Printf.sprintf "cmt root '%s' does not exist; run 'dune build' first" cmt_root)
  else begin
    let cmts = Lint_core.files_under ~suffix:".cmt" cmt_root in
    if cmts = [] then
      Some
        (Printf.sprintf "no .cmt files under '%s'; run 'dune build' first" cmt_root)
    else begin
      (* Module key: cmt basename minus the wrapped-library `Lib__`
         prefix (everything up to the last "__"), lowercased —
         "sim__R2c2_sim.cmt" and "r2c2_sim.ml" both → "r2c2_sim". *)
      let module_key base =
        let base = Filename.remove_extension base in
        let n = String.length base in
        let cut = ref 0 in
        for i = 1 to n - 1 do
          if base.[i] = '_' && base.[i - 1] = '_' then cut := i + 1
        done;
        String.lowercase_ascii (String.sub base !cut (n - !cut))
      in
      let newest = Hashtbl.create 64 in
      List.iter
        (fun cmt ->
          let key = module_key (Filename.basename cmt) in
          let mt = (Unix.stat cmt).Unix.st_mtime in
          match Hashtbl.find_opt newest key with
          | Some prev when prev >= mt -> ()
          | _ -> Hashtbl.replace newest key mt)
        cmts;
      let mls =
        List.filter
          (fun ml -> not (Filename.check_suffix ml ".pp.ml"))
          (Lint_core.ml_files_under cmt_root)
      in
      let stale_of ml =
        let key = module_key (Filename.basename ml) in
        match Hashtbl.find_opt newest key with
        | None -> Some (Printf.sprintf "no .cmt for '%s'" ml)
        | Some cmt_mt ->
            if (Unix.stat ml).Unix.st_mtime > cmt_mt then
              Some (Printf.sprintf "'%s' is newer than its .cmt" ml)
            else None
      in
      match List.find_map stale_of mls with
      | Some why ->
          Some
            (Printf.sprintf "cmt root '%s' is stale (%s); rerun 'dune build'" cmt_root why)
      | None -> None
    end
  end

let load_units ~cmt_root =
  if not (Sys.file_exists cmt_root && Sys.is_directory cmt_root) then
    raise
      (Lint_core.Internal
         (Printf.sprintf
            "cmt root '%s' does not exist; build the libraries first (dune compiles with \
             -bin-annot by default)"
            cmt_root));
  let units =
    List.filter_map load_unit (Lint_core.files_under ~suffix:".cmt" cmt_root)
  in
  if units = [] then
    raise
      (Lint_core.Internal
         (Printf.sprintf "no .cmt files under '%s'; build the libraries first" cmt_root));
  List.sort (fun a b -> String.compare a.u_name b.u_name) units

(* -- mutable-type fixpoint ------------------------------------------------ *)

(* Normalized head-constructor names that are mutable out of the box. *)
let builtin_mutable =
  [
    "ref"; "array"; "bytes"; "floatarray";
    "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t"; "Atomic.t"; "Mutex.t"; "Condition.t";
    "Bigarray.Array1.t"; "Bigarray.Array2.t"; "Bigarray.Array3.t"; "Bigarray.Genarray.t";
    "Ephemeron.K1.t"; "Weak.t"; "Dynarray.t";
  ]

let strip_stdlib p =
  if String.length p > 7 && String.sub p 0 7 = "Stdlib." then
    String.sub p 7 (String.length p - 7)
  else p

(* Path display → registry-style dotted name: undo `__` mangling, strip
   the `Stdlib.` root, collapse the double dot an alias root like
   `Sim__` leaves behind. *)
let normalize_path_name name =
  let dotted = display_name name in
  let parts = List.filter (fun s -> s <> "") (String.split_on_char '.' dotted) in
  strip_stdlib (String.concat "." parts)

module SSet = Set.Make (String)

(* Does [ty] mention a mutable type? Heads are compared by normalized
   path name against the builtins and the fixpoint set; arrows stop the
   walk (a function returning a ref is a factory, not shared state);
   the depth cap stands in for a visited set on recursive types.

   [scopes] is the chain of enclosing module prefixes at the point of
   reference, innermost first, each ending in '.', with "" last. The
   fixpoint set stores fully-qualified declaration names, but a typed
   reference to a unit-local type is a bare `Pident` ("debug_counters",
   not "Congestion.Waterfill.debug_counters"), and a reference to a
   sibling submodule's type is qualified only up to the unit ("Inc.t");
   qualifying the head with each enclosing prefix in turn resolves both
   spellings the way the scoping rules do. *)
let rec ty_mentions muts scopes depth (ty : Types.type_expr) =
  depth < 40
  &&
  match Types.get_desc ty with
  | Tconstr (path, args, _) ->
      let n = normalize_path_name (Path.name path) in
      List.mem n builtin_mutable
      || List.exists (fun prefix -> SSet.mem (prefix ^ n) muts) scopes
      || List.exists (ty_mentions muts scopes (depth + 1)) args
  | Ttuple l -> List.exists (ty_mentions muts scopes (depth + 1)) l
  | Tpoly (t, _) -> ty_mentions muts scopes (depth + 1) t
  | Tarrow _ -> false
  | _ -> false

let decl_is_mutable muts scopes (d : Typedtree.type_declaration) =
  let core ct = ty_mentions muts scopes 0 ct.Typedtree.ctyp_type in
  let label (ld : Typedtree.label_declaration) =
    ld.ld_mutable = Asttypes.Mutable || core ld.ld_type
  in
  (match d.typ_kind with
  | Ttype_record labels -> List.exists label labels
  | Ttype_variant constrs ->
      List.exists
        (fun (cd : Typedtree.constructor_declaration) ->
          match cd.cd_args with
          | Cstr_tuple cts -> List.exists core cts
          | Cstr_record lds -> List.exists label lds)
        constrs
  | Ttype_abstract | Ttype_open -> false)
  || match d.typ_manifest with Some ct -> core ct | None -> false

(* All type declarations of a unit, with their full dotted names and the
   scope chain at the declaration site, recursing into literal submodule
   structures. *)
let collect_type_decls unit_ =
  let out = ref [] in
  let rec go scopes (str : Typedtree.structure) =
    let prefix = List.hd scopes in
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_type (_, decls) ->
            List.iter
              (fun (d : Typedtree.type_declaration) ->
                out := (prefix ^ Ident.name d.typ_id, scopes, d) :: !out)
              decls
        | Tstr_module mb -> go_module scopes mb
        | Tstr_recmodule mbs -> List.iter (go_module scopes) mbs
        | _ -> ())
      str.str_items
  and go_module scopes (mb : Typedtree.module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let rec strip (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> Some s
      | Tmod_constraint (inner, _, _, _) -> strip inner
      | _ -> None
    in
    match strip mb.mb_expr with
    | Some s -> go ((List.hd scopes ^ name ^ ".") :: scopes) s
    | None -> ()
  in
  go [ unit_.u_name ^ "."; "" ] unit_.u_str;
  !out

let mutable_types units =
  let decls = List.concat_map collect_type_decls units in
  let rec fix muts =
    let muts' =
      List.fold_left
        (fun acc (name, scopes, d) ->
          if decl_is_mutable acc scopes d then SSet.add name acc else acc)
        muts decls
    in
    if SSet.equal muts muts' then muts else fix muts'
  in
  fix SSet.empty

(* -- inventory ------------------------------------------------------------ *)

(* The variable a binding pattern introduces. `let x : t = …` reaches the
   typed tree as `Tpat_alias` (the typechecker rebuilds the constrained
   pattern around an alias), so matching `Tpat_var` alone silently skips
   every annotated binding. *)
let binding_var (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_var (_, s) -> Some s
  | Tpat_alias (_, _, s) -> Some s
  | _ -> None

type inv_item = {
  i_name : string;  (* registry key: "Congestion.Waterfill.dbg" *)
  i_file : string;
  i_line : int;
  i_why_mutable : string;  (* human-readable: the type, or the captured binding *)
}

(* `let f = let r = ref 0 in fun … -> …`: [f] is a function, but the ref
   on its definition spine lives as long as [f] does — shared mutable
   state wearing a closure. Returns the first such captured binding. *)
let captured_spine muts scopes (e : Typedtree.expression) =
  let rec go (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_let (_, vbs, body) -> (
        let cap =
          List.find_map
            (fun (vb : Typedtree.value_binding) ->
              match binding_var vb.vb_pat with
              | Some { txt; _ } when ty_mentions muts scopes 0 vb.vb_pat.pat_type ->
                  Some txt
              | _ -> None)
            vbs
        in
        match (cap, is_fun body || go body <> None) with
        | Some name, true -> Some name
        | _ -> go body)
    | Texp_function _ -> None
    | _ -> None
  and is_fun (e : Typedtree.expression) =
    match e.exp_desc with Texp_function _ -> true | _ -> false
  in
  go e

let type_to_string ty =
  Format.asprintf "%a" Printtyp.type_expr ty

let inventory_of_unit muts unit_ =
  let out = ref [] in
  let add name (loc : Location.t) why =
    out :=
      {
        i_name = name;
        i_file = unit_.u_file;
        i_line = loc.loc_start.pos_lnum;
        i_why_mutable = why;
      }
      :: !out
  in
  let rec go scopes (str : Typedtree.structure) =
    let prefix = List.hd scopes in
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match binding_var vb.vb_pat with
                | Some { txt; loc } ->
                    if ty_mentions muts scopes 0 vb.vb_pat.pat_type then
                      add (prefix ^ txt) loc (type_to_string vb.vb_pat.pat_type)
                    else (
                      match captured_spine muts scopes vb.vb_expr with
                      | Some captured ->
                          add (prefix ^ txt) loc
                            (Printf.sprintf "closure capturing mutable binding '%s'"
                               captured)
                      | None -> ())
                | _ -> ())
              vbs
        | Tstr_module mb -> go_module scopes mb
        | Tstr_recmodule mbs -> List.iter (go_module scopes) mbs
        | _ -> ())
      str.str_items
  and go_module scopes (mb : Typedtree.module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let rec strip (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> Some s
      | Tmod_constraint (inner, _, _, _) -> strip inner
      | _ -> None
    in
    match strip mb.mb_expr with
    | Some s -> go ((List.hd scopes ^ name ^ ".") :: scopes) s
    | None -> ()
  in
  go [ unit_.u_name ^ "."; "" ] unit_.u_str;
  List.rev !out

(* -- M2: escaping closures over shard_owned state ------------------------- *)

let path_root p =
  let rec go = function
    | Path.Pident id -> Ident.name id
    | Path.Pdot (p, _) -> go p
    | Path.Papply (p, _) -> go p
    | Path.Pextra_ty (p, _) -> go p
  in
  go p

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* Modules literally defined in this unit: closures handed to our own
   submodules stay inside the module boundary M2 patrols. *)
let own_submodules unit_ =
  let out = ref SSet.empty in
  let rec go (str : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_module mb -> go_mb mb
        | Tstr_recmodule mbs -> List.iter go_mb mbs
        | _ -> ())
      str.str_items
  and go_mb (mb : Typedtree.module_binding) =
    (match mb.mb_name.txt with Some n -> out := SSet.add n !out | None -> ());
    match mb.mb_expr.mod_desc with Tmod_structure s -> go s | _ -> ()
  in
  go unit_.u_str;
  !out

let m2_scan ~shard_items unit_ =
  if SSet.is_empty shard_items then []
  else begin
    let out = ref [] in
    let own = own_submodules unit_ in
    (* Both the fully-qualified spelling and the in-unit local spelling
       of each shard item are capture witnesses. *)
    let local_of item =
      match starts_with ~prefix:(unit_.u_name ^ ".") item with
      | true ->
          Some (String.sub item
                  (String.length unit_.u_name + 1)
                  (String.length item - String.length unit_.u_name - 1))
      | false -> None
    in
    let captured_shard (e : Typedtree.expression) =
      let hits = ref SSet.empty in
      let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
        (match e.exp_desc with
        | Texp_ident (path, _, _) ->
            let qualified = normalize_path_name (Path.name path) in
            let as_local =
              match path with
              | Path.Pident id -> Some (unit_.u_name ^ "." ^ Ident.name id)
              | _ -> None
            in
            SSet.iter
              (fun item ->
                if
                  qualified = item
                  || as_local = Some item
                  || local_of item = Some qualified
                then hits := SSet.add item !hits)
              shard_items
        | _ -> ());
        Tast_iterator.default_iterator.expr it e
      in
      let it = { Tast_iterator.default_iterator with expr } in
      it.expr it e;
      !hits
    in
    (* Foreign callee: a dotted path whose root is neither Stdlib, nor a
       submodule of this unit, nor the sanctioned Util.Tbl iterators.
       Bare local functions keep the closure in-module. The Stdlib
       exemption is judged on the raw (unstripped) path root — its
       higher-order functions are immediate iterators — except Domain
       and Thread, which hand the closure to another thread of control:
       exactly the escape M2 exists to catch. *)
    let foreign path =
      match path with
      | Path.Pident _ -> false
      | _ ->
          let raw = display_name (Path.name path) in
          let raw_root =
            match String.split_on_char '.' raw with r :: _ -> r | [] -> ""
          in
          let full = strip_stdlib raw in
          let root =
            match String.split_on_char '.' full with r :: _ -> r | [] -> ""
          in
          (raw_root <> "Stdlib" || root = "Domain" || root = "Thread")
          && not (starts_with ~prefix:"Util.Tbl." full)
          && not (SSet.mem root own)
    in
    let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
      (match e.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, args) when foreign path ->
          List.iter
            (fun ((_, arg) : _ * Typedtree.expression option) ->
              match arg with
              | Some ({ exp_desc = Texp_function _; _ } as lam) ->
                  SSet.iter
                    (fun item ->
                      out :=
                        {
                          Lint_core.file = unit_.u_file;
                          line = lam.exp_loc.loc_start.pos_lnum;
                          rule = "M2";
                          message =
                            Printf.sprintf
                              "closure capturing shard_owned '%s' escapes into '%s'; a \
                               foreign module may run it on another domain — pass data, \
                               not the closure, or re-register the item"
                              item
                              (normalize_path_name (Path.name path));
                        }
                        :: !out)
                    (captured_shard lam)
              | _ -> ())
            args
      | _ -> ());
      Tast_iterator.default_iterator.expr it e
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.structure it unit_.u_str;
    List.rev !out
  end

(* -- the M pass ------------------------------------------------------------ *)

type result = {
  inventory : (inv_item * string option) list;
      (* each item with its registered ownership class, if any *)
  typed_violations : Lint_core.violation list;
}

let analyze ~registry units =
  let muts = mutable_types units in
  let inventory = List.concat_map (inventory_of_unit muts) units in
  let violations = ref [] in
  let add file line rule message =
    violations := { Lint_core.file; line; rule; message } :: !violations
  in
  (* M1: registry hygiene. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      (match Hashtbl.find_opt seen e.r_item with
      | Some first ->
          add registry.reg_file e.r_line "M1"
            (Printf.sprintf "duplicate registry entry for '%s' (first at line %d)" e.r_item
               first)
      | None -> Hashtbl.replace seen e.r_item e.r_line);
      (match ownership_of_string e.r_class with
      | Some _ -> ()
      | None ->
          add registry.reg_file e.r_line "M1"
            (Printf.sprintf
               "'%s' has unknown ownership class '%s'; expected domain_local, shard_owned \
                or shared_readonly"
               e.r_item e.r_class));
      if String.trim e.r_why = "" then
        add registry.reg_file e.r_line "M1"
          (Printf.sprintf "'%s' has an empty justification" e.r_item);
      (match e.r_key with
      | Some k when e.r_class <> "shard_owned" ->
          add registry.reg_file e.r_line "M1"
            (Printf.sprintf
               "'%s' declares '(key %s)' but is %s; a sharding key is only meaningful on \
                shard_owned entries"
               e.r_item k e.r_class)
      | Some k when String.trim k = "" ->
          add registry.reg_file e.r_line "M1"
            (Printf.sprintf "'%s' has an empty '(key …)' field" e.r_item)
      | _ -> ());
      if not (List.exists (fun i -> i.i_name = e.r_item) inventory) then
        add registry.reg_file e.r_line "M1"
          (Printf.sprintf
             "stale registry entry: no toplevel mutable item '%s' exists (renamed or \
              removed? delete the entry)"
             e.r_item))
    registry.entries;
  (* M3: inventory coverage. *)
  let class_of item =
    List.find_map (fun e -> if e.r_item = item then Some e.r_class else None)
      registry.entries
  in
  List.iter
    (fun i ->
      match class_of i.i_name with
      | Some _ -> ()
      | None ->
          add i.i_file i.i_line "M3"
            (Printf.sprintf
               "unregistered toplevel mutable state '%s' (%s); declare it in %s as \
                domain_local, shard_owned or shared_readonly with a justification"
               i.i_name i.i_why_mutable registry.reg_file))
    inventory;
  (* M2: escaping closures over shard_owned items. *)
  let shard_items =
    List.fold_left
      (fun acc e -> if e.r_class = "shard_owned" then SSet.add e.r_item acc else acc)
      SSet.empty registry.entries
  in
  let m2 = List.concat_map (m2_scan ~shard_items) units in
  let inventory =
    List.sort
      (fun (a, _) (b, _) -> String.compare a.i_name b.i_name)
      (List.map (fun i -> (i, class_of i.i_name)) inventory)
  in
  { inventory; typed_violations = List.rev !violations @ m2 }
