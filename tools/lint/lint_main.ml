(* r2c2-lint CLI.

   Usage:
     lint_main [--json FILE] [--shard-json FILE] [--registry FILE]
               [--cmt-root DIR] [--relaxed DIR]... [--time-budget SEC]
               DIR...

   Each positional DIR is linted at the tier its basename implies
   (lib → Lib, bench/test → Relaxed, anything else → Default);
   `--relaxed DIR` forces a root to the Relaxed tier regardless.
   `--registry` + `--cmt-root` together enable the typed M and E
   passes; omitting either skips them (parse + lifetime rules only).
   `--json FILE` additionally writes the machine-readable report;
   `--shard-json FILE` writes the effect map + cut-set
   (SHARD_REPORT.json). `--time-budget SEC` fails the run (exit 1) if
   the passes together exceed SEC seconds — the CI guard that keeps
   `dune build @lint` interactive as passes accumulate.

   Exit codes (CI keys off these):
     0  clean
     1  violations, stale allows, or a blown time budget — the code
        (or the linter) needs fixing
     2  internal error (bad usage, missing or stale --cmt-root,
        unreadable .cmt, registry syntax error) — the linter run
        itself is invalid *)

let usage () =
  prerr_endline
    "usage: lint_main [--json FILE] [--shard-json FILE] [--registry FILE] [--cmt-root \
     DIR] [--relaxed DIR]... [--time-budget SEC] DIR...";
  exit 2

let () =
  let json = ref None
  and shard_json = ref None
  and registry = ref None
  and cmt_root = ref None
  and relaxed = ref []
  and budget = ref None
  and roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: v :: rest ->
        json := Some v;
        parse rest
    | "--shard-json" :: v :: rest ->
        shard_json := Some v;
        parse rest
    | "--registry" :: v :: rest ->
        registry := Some v;
        parse rest
    | "--cmt-root" :: v :: rest ->
        cmt_root := Some v;
        parse rest
    | "--relaxed" :: v :: rest ->
        relaxed := v :: !relaxed;
        parse rest
    | "--time-budget" :: v :: rest ->
        (match float_of_string_opt v with
        | Some b when b > 0. -> budget := Some b
        | _ ->
            Printf.eprintf "lint_main: --time-budget expects a positive number, got '%s'\n" v;
            exit 2);
        parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "lint_main: unknown option '%s'\n" arg;
        usage ()
    | dir :: rest ->
        if not (Sys.file_exists dir) then begin
          Printf.eprintf "lint_main: no such path: %s\n" dir;
          exit 2
        end;
        roots := dir :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !roots = [] then usage ();
  (* Pre-flight: a missing or stale --cmt-root is diagnosed in one line
     before any .cmt is parsed, not as an exception trace mid-pass. *)
  (match !cmt_root with
  | Some dir -> (
      match Lint_typed.cmt_root_problem ~cmt_root:dir with
      | Some why ->
          Printf.eprintf "lint_main: %s\n" why;
          exit 2
      | None -> ())
  | None -> ());
  let config =
    {
      Lint_driver.roots = List.rev !roots;
      relaxed = List.rev !relaxed;
      registry_file = !registry;
      cmt_root = !cmt_root;
    }
  in
  match Lint_driver.run config with
  | report ->
      (match !json with Some path -> Lint_driver.write_json path report | None -> ());
      (match (!shard_json, report.Lint_driver.effects) with
      | Some path, Some e -> Lint_driver.write_shard_json path e
      | Some _, None ->
          prerr_endline "lint_main: --shard-json requires --registry and --cmt-root";
          exit 2
      | None, _ -> ());
      let code = Lint_driver.report_and_exit_code stdout report in
      let code =
        match !budget with
        | Some b ->
            let total_s =
              List.fold_left (fun a (_, ms) -> a +. ms) 0. report.Lint_driver.timings
              /. 1000.
            in
            if total_s > b then begin
              Printf.eprintf
                "lint_main: lint passes took %.1fs, over the %.1fs budget — profile \
                 timings_ms in the JSON report\n"
                total_s b;
              max code 1
            end
            else code
        | None -> code
      in
      exit code
  | exception Lint_core.Internal msg ->
      Printf.eprintf "lint_main: internal error: %s\n" msg;
      exit 2
  | exception Sys_error msg ->
      Printf.eprintf "lint_main: internal error: %s\n" msg;
      exit 2
