(* CLI driver: `lint_main <root>…` lints every `.ml` under each root.
   A root whose basename is `lib` additionally gets the lib-only rules
   (D2 wall-clock, D3 raw Hashtbl iteration). The units rules U1–U3 and
   D1/S1/S2 apply to every root (lib, bench, bin, examples). Exits
   non-zero on any violation or stale allow, so `dune build @lint` is a
   CI gate. *)

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ ->
        prerr_endline "usage: lint_main <dir>…";
        exit 2
  in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "lint_main: no such path: %s\n" r;
        exit 2
      end)
    roots;
  exit (Lint_core.report_and_exit_code stdout (Lint_core.lint_roots roots))
