(* r2c2-lint CLI.

   Usage:
     lint_main [--json FILE] [--registry FILE] [--cmt-root DIR]
               [--relaxed DIR]... DIR...

   Each positional DIR is linted at the tier its basename implies
   (lib → Lib, bench/test → Relaxed, anything else → Default);
   `--relaxed DIR` forces a root to the Relaxed tier regardless.
   `--registry` + `--cmt-root` together enable the typed M pass;
   omitting either skips it (parse + lifetime rules only).
   `--json FILE` additionally writes the machine-readable report.

   Exit codes (CI keys off these):
     0  clean
     1  violations or stale allows — the code needs fixing
     2  internal error (bad usage, unreadable .cmt, registry syntax
        error) — the linter run itself is invalid *)

let usage () =
  prerr_endline
    "usage: lint_main [--json FILE] [--registry FILE] [--cmt-root DIR] [--relaxed DIR]... \
     DIR...";
  exit 2

let () =
  let json = ref None
  and registry = ref None
  and cmt_root = ref None
  and relaxed = ref []
  and roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: v :: rest ->
        json := Some v;
        parse rest
    | "--registry" :: v :: rest ->
        registry := Some v;
        parse rest
    | "--cmt-root" :: v :: rest ->
        cmt_root := Some v;
        parse rest
    | "--relaxed" :: v :: rest ->
        relaxed := v :: !relaxed;
        parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "lint_main: unknown option '%s'\n" arg;
        usage ()
    | dir :: rest ->
        if not (Sys.file_exists dir) then begin
          Printf.eprintf "lint_main: no such path: %s\n" dir;
          exit 2
        end;
        roots := dir :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !roots = [] then usage ();
  let config =
    {
      Lint_driver.roots = List.rev !roots;
      relaxed = List.rev !relaxed;
      registry_file = !registry;
      cmt_root = !cmt_root;
    }
  in
  match Lint_driver.run config with
  | report ->
      (match !json with Some path -> Lint_driver.write_json path report | None -> ());
      exit (Lint_driver.report_and_exit_code stdout report)
  | exception Lint_core.Internal msg ->
      Printf.eprintf "lint_main: internal error: %s\n" msg;
      exit 2
  | exception Sys_error msg ->
      Printf.eprintf "lint_main: internal error: %s\n" msg;
      exit 2
