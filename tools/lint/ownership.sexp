; r2c2 mutable-state ownership registry (DESIGN.md §13).
;
; Every toplevel mutable item under lib/ must have an entry here; the
; lint M-rules enforce it (M3 flags unregistered items, M1 flags stale
; or malformed entries). Classes describe what the sharded multicore
; engine may assume:
;
;   domain_local     one copy per domain; no synchronization needed.
;   shard_owned      owned by exactly one shard; reachable from other
;                    shards only via messages. M2 patrols closures that
;                    capture these and escape their module; E1 requires
;                    every dispatch-reachable write to be keyed by the
;                    handler argument named in the entry's optional
;                    `(key node)` field (M1 rejects `key` on any other
;                    class).
;   shared_readonly  frozen after setup; safe to share between domains.
;                    E2 flags writes from outside the owning module
;                    unless they sit in a `(* lint: init *)` …
;                    `(* lint: init end *)` span.

((item Congestion.Waterfill.dbg)
 (class domain_local)
 (why "ablation operation counters, reset per allocate; once the engine is sharded each domain keeps its own record and reports stay per-domain"))

((item Congestion.Waterfill.Inc.heap_key)
 (class domain_local)
 (why "scratch out-parameter of heap_pop (avoids a tuple allocation on the hot path); valid only between one pop and the next, never read across calls, so each domain gets its own cell"))

((item R2c2.Stack.default_config)
 (class shared_readonly)
 (why "config template built at module init; the selection_choices array is never written after construction — stacks read it or copy-update the record with a fresh array"))
