(* r2c2-lint: determinism & simulation-safety static analysis.

   R2C2's congestion control (§3.2–3.3) requires every node to compute
   the same max-min allocation from the same broadcast traffic matrix,
   and the repro's tier-1 guarantee is bit-for-bit reproducible
   simulations. This pass walks the parsetree of every `.ml` under
   `lib/` and `bench/` (no typing — `Parse` + `Ast_iterator` from
   compiler-libs only) and rejects constructs that break either:

   D1  `Random.*` anywhere — the ambient PRNG is unseeded global state;
       only the explicit, splittable `Util.Rng` is allowed.
   D2  wall-clock / environment reads (`Unix.gettimeofday`, `Sys.time`,
       `Sys.getenv`, …) under `lib/` — simulation results must be a
       function of the seed, never of the host. `bench/` may time
       itself.
   D3  raw `Hashtbl.iter` / `Hashtbl.fold` under `lib/` — hash order
       depends on insertion history, so two rack nodes holding the same
       bindings can walk them differently; use `Util.Tbl`
       (`sorted_keys` / `sorted_bindings` / `fold_sorted` / …), which
       fixes the order by key.
   S1  `Obj.magic`, and catch-all `try … with _ ->` handlers that
       swallow exceptions (including assertion failures) silently.
   S2  bare polymorphic `compare` passed as a value (e.g.
       `List.sort compare`) — on pairs containing floats it orders NaN
       inconsistently and ties break by structural accident; use
       `Int.compare` / `Float.compare` / an explicit key comparator.
       (Purely syntactic: without types we flag every first-class bare
       `compare`; int-keyed sites should switch to `Int.compare`, which
       is also faster.)

   A violation can be suppressed with a justification comment on the
   offending line or the line directly above it:

       (* lint: allow D3 — order-independent: folding a commutative max *)

   The rule list may name several rules (`allow D2 D3 — …`); the reason
   after the dash is mandatory, and a malformed or reason-less allow is
   itself reported (rule LINT) and cannot be suppressed. The summary
   counts applied suppressions so reviewers can see how much of the
   codebase is exempted. *)

type violation = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

type report = {
  violations : violation list;  (* sorted by (file, line, rule) *)
  files : int;
  suppressed : int;  (* violations silenced by a valid allow *)
  unused_allows : (string * int) list;  (* allow comments that silenced nothing *)
}

let rules = [ "D1"; "D2"; "D3"; "S1"; "S2" ]

(* -- suppression comments ------------------------------------------------ *)

type allow = { allow_rules : string list; mutable used : bool }

let is_rule_char c = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* Parses "lint: allow R1 R2 — reason" out of [line]. Returns
   [`None] (no marker), [`Malformed] or [`Allow rules]. *)
let parse_allow line =
  match find_substring line "lint: allow" with
  | None -> `None
  | Some i ->
      let rest = String.sub line (i + 11) (String.length line - i - 11) in
      (* Tokenize rule names up to the dash separator. *)
      let n = String.length rest in
      let rec rules_of j acc =
        if j >= n then (acc, n)
        else if rest.[j] = ' ' || rest.[j] = ',' then rules_of (j + 1) acc
        else if is_rule_char rest.[j] then begin
          let k = ref j in
          while !k < n && is_rule_char rest.[!k] do
            incr k
          done;
          rules_of !k (String.sub rest j (!k - j) :: acc)
        end
        else (acc, j)
      in
      let named, j = rules_of 0 [] in
      let named = List.rev named in
      (* Accept "—" (em dash), "--" or "-" as the reason separator. *)
      let rest = String.sub rest j (n - j) in
      let reason =
        let strip p s =
          let np = String.length p in
          if String.length s >= np && String.sub s 0 np = p then
            Some (String.sub s np (String.length s - np))
          else None
        in
        match (strip "\xe2\x80\x94" rest, strip "--" rest, strip "-" rest) with
        | Some r, _, _ | _, Some r, _ | _, _, Some r -> Some r
        | None, None, None -> None
      in
      let non_blank s = String.exists (fun c -> c <> ' ' && c <> '*' && c <> ')') s in
      let valid_rules = named <> [] && List.for_all (fun r -> List.mem r rules) named in
      (match reason with
      | Some r when valid_rules && non_blank r -> `Allow named
      | _ -> `Malformed)

let split_lines src =
  let out = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        out := String.sub src !start (i - !start) :: !out;
        start := i + 1
      end)
    src;
  out := String.sub src !start (String.length src - !start) :: !out;
  List.rev !out

(* -- AST checks ---------------------------------------------------------- *)

let path_of lid = String.concat "." (Longident.flatten lid)

let strip_stdlib p =
  if String.length p > 7 && String.sub p 0 7 = "Stdlib." then
    String.sub p 7 (String.length p - 7)
  else p

let has_root ~root p = p = root || String.length p > String.length root
                                   && String.sub p 0 (String.length root + 1) = root ^ "."

let clock_reads =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.gmtime";
    "Unix.localtime";
    "Sys.time";
    "Sys.getenv";
    "Sys.getenv_opt";
    "Unix.getenv";
    "Unix.environment";
  ]

let check_path ~in_lib add path loc =
  let p = strip_stdlib path in
  if has_root ~root:"Random" p then
    add "D1" loc
      (Printf.sprintf "'%s' is ambient nondeterministic state; use Util.Rng (seeded, splittable)"
         path);
  if in_lib && List.mem p clock_reads then
    add "D2" loc
      (Printf.sprintf
         "'%s' reads the host clock/environment; lib/ results must be a function of the seed"
         path);
  if in_lib && (p = "Hashtbl.iter" || p = "Hashtbl.fold") then
    add "D3" loc
      (Printf.sprintf
         "raw '%s' iterates in hash order (a rack-divergence hazard); use Util.Tbl.%s ~cmp:…"
         path
         (if p = "Hashtbl.iter" then "iter_sorted" else "fold_sorted"));
  if p = "Obj.magic" then add "S1" loc "'Obj.magic' defeats the type system"

let lint_structure ~in_lib ~add structure =
  let open Parsetree in
  let expr (iter : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_path ~in_lib add (path_of txt) loc
    | Pexp_apply (_, args) ->
        List.iter
          (fun ((_, a) : Asttypes.arg_label * expression) ->
            match a.pexp_desc with
            | Pexp_ident { txt = Longident.Lident "compare"; loc }
            | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Stdlib", "compare"); loc } ->
                add "S2" loc
                  "bare polymorphic 'compare' as a comparator (NaN/tie-break hazard); use \
                   Int.compare, Float.compare or an explicit key comparator"
            | _ -> ())
          args
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_any ->
                add "S1" c.pc_lhs.ppat_loc
                  "catch-all 'try … with _ ->' swallows every exception (including \
                   Assert_failure); match the specific exceptions instead"
            | _ -> ())
          cases
    | _ -> ());
    Ast_iterator.default_iterator.expr iter e
  in
  let check_open path loc =
    let p = strip_stdlib path in
    if has_root ~root:"Random" p then
      add "D1" loc "'open Random' imports ambient nondeterministic state; use Util.Rng";
    if in_lib && has_root ~root:"Hashtbl" p then
      add "D3" loc "'open Hashtbl' hides raw iteration from this linter; qualify Hashtbl calls instead"
  in
  let open_description iter (od : open_description) =
    check_open (path_of od.popen_expr.txt) od.popen_loc;
    Ast_iterator.default_iterator.open_description iter od
  in
  (* `open M` in a structure (and `let open M in …`) carries a module
     expression, not a bare path. *)
  let open_declaration iter (od : open_declaration) =
    (match od.popen_expr.pmod_desc with
    | Pmod_ident { txt; _ } -> check_open (path_of txt) od.popen_loc
    | _ -> ());
    Ast_iterator.default_iterator.open_declaration iter od
  in
  let iterator =
    { Ast_iterator.default_iterator with expr; open_description; open_declaration }
  in
  iterator.structure iterator structure

(* -- per-file driver ----------------------------------------------------- *)

let lint_source ~file ~in_lib src =
  let allows = Hashtbl.create 8 in
  let raw = ref [] in
  List.iteri
    (fun i line ->
      match parse_allow line with
      | `None -> ()
      | `Allow rs -> Hashtbl.replace allows (i + 1) { allow_rules = rs; used = false }
      | `Malformed ->
          raw :=
            {
              file;
              line = i + 1;
              rule = "LINT";
              message =
                "malformed suppression; expected '(* lint: allow RULE — reason *)' with a \
                 non-empty reason";
            }
            :: !raw)
    (split_lines src);
  let add rule (loc : Location.t) message =
    let line = loc.loc_start.pos_lnum in
    raw := { file; line; rule; message } :: !raw
  in
  (try
     let lexbuf = Lexing.from_string src in
     Location.init lexbuf file;
     lint_structure ~in_lib ~add (Parse.implementation lexbuf)
   with exn ->
     let message =
       match exn with
       | Syntaxerr.Error _ -> "syntax error: file does not parse"
       | _ -> Printf.sprintf "parse failure: %s" (Printexc.to_string exn)
     in
     raw := { file; line = 1; rule = "LINT"; message } :: !raw);
  let suppressed = ref 0 in
  let keep v =
    if v.rule = "LINT" then true (* malformed allows are never suppressible *)
    else begin
      let covered line =
        match Hashtbl.find_opt allows line with
        | Some a when List.mem v.rule a.allow_rules ->
            a.used <- true;
            true
        | _ -> false
      in
      (* The allow may sit on the offending line or directly above it. *)
      if covered v.line || covered (v.line - 1) then begin
        incr suppressed;
        false
      end
      else true
    end
  in
  let violations =
    List.sort
      (fun a b ->
        let c = Int.compare a.line b.line in
        if c <> 0 then c else String.compare a.rule b.rule)
      (List.filter keep !raw)
  in
  let unused =
    List.sort
      (fun (_, a) (_, b) -> Int.compare a b)
      (Hashtbl.fold (fun line a acc -> if a.used then acc else (file, line) :: acc) allows [])
  in
  { violations; files = 1; suppressed = !suppressed; unused_allows = unused }

let lint_file ~in_lib file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  lint_source ~file ~in_lib src

(* -- tree walking -------------------------------------------------------- *)

let rec ml_files_under path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries (* Sys.readdir order is unspecified *);
    Array.fold_left
      (fun acc e -> acc @ ml_files_under (Filename.concat path e))
      [] entries
  end
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

(* A root named `lib` (or any file under a `lib` directory) gets the
   lib-only rules D2/D3 as well. *)
let root_is_lib root =
  let base = Filename.basename (if Filename.check_suffix root "/" then Filename.chop_suffix root "/" else root) in
  base = "lib"

let merge a b =
  {
    violations = a.violations @ b.violations;
    files = a.files + b.files;
    suppressed = a.suppressed + b.suppressed;
    unused_allows = a.unused_allows @ b.unused_allows;
  }

let empty = { violations = []; files = 0; suppressed = 0; unused_allows = [] }

let lint_root root =
  let in_lib = root_is_lib root in
  List.fold_left (fun acc f -> merge acc (lint_file ~in_lib f)) empty (ml_files_under root)

let lint_roots roots = List.fold_left (fun acc r -> merge acc (lint_root r)) empty roots

(* -- reporting ----------------------------------------------------------- *)

let pp_violation oc v =
  Printf.fprintf oc "%s:%d: [%s] %s\n" v.file v.line v.rule v.message

let report_and_exit_code oc r =
  List.iter (pp_violation oc) r.violations;
  List.iter
    (fun (f, l) -> Printf.fprintf oc "%s:%d: warning: unused 'lint: allow' comment\n" f l)
    r.unused_allows;
  Printf.fprintf oc "r2c2-lint: %d file(s), %d violation(s), %d suppression(s) applied\n"
    r.files (List.length r.violations) r.suppressed;
  if r.violations = [] then 0 else 1
