(* r2c2-lint: determinism & simulation-safety static analysis — parse pass.

   R2C2's congestion control (§3.2–3.3) requires every node to compute
   the same max-min allocation from the same broadcast traffic matrix,
   and the repro's tier-1 guarantee is bit-for-bit reproducible
   simulations. This module walks the parsetree of every `.ml` it is
   given (no typing — `Parse` + `Ast_iterator` from compiler-libs only)
   and rejects constructs that break either:

   D1  `Random.*` anywhere — the ambient PRNG is unseeded global state;
       only the explicit, splittable `Util.Rng` is allowed.
   D2  wall-clock / environment reads (`Unix.gettimeofday`, `Sys.time`,
       `Sys.getenv`, …) under `lib/` — simulation results must be a
       function of the seed, never of the host. `bench/` may time
       itself.
   D3  raw `Hashtbl.iter` / `Hashtbl.fold` — hash order depends on
       insertion history, so two rack nodes holding the same bindings
       can walk them differently; use `Util.Tbl` (`sorted_keys` /
       `sorted_bindings` / `fold_sorted` / …), which fixes the order by
       key. Enforced in `lib/` and, since v3, in `bench/` and `test/`
       too (a bench or test that walks a table in hash order can mask a
       rack-divergence bug in the code under test).
   S1  `Obj.magic`, and catch-all `try … with _ ->` handlers that
       swallow exceptions (including assertion failures) silently.
   S2  bare polymorphic `compare` passed as a value (e.g.
       `List.sort compare`) — on pairs containing floats it orders NaN
       inconsistently and ties break by structural accident; use
       `Int.compare` / `Float.compare` / an explicit key comparator.
       (Purely syntactic: without types we flag every first-class bare
       `compare`; int-keyed sites should switch to `Int.compare`, which
       is also faster.)

   The units pass (dimensional analysis for the data plane; the type
   layer itself lives in `Util.Units`):

   U1  a raw float literal bound to a unit-carrying labeled argument
       (`~gbps:10.0`, `~headroom:0.05`, `~loss:(Some 0.3)`, …). The
       phantom types normally reject this at compile time; the lint
       keeps the rule visible where a local helper shadows the typed
       API with raw floats. Wrap the literal in its constructor:
       `~gbps:(Util.Units.gbps 10.0)`.
   U2  float arithmetic directly on a `to_float` result
       (`Util.Units.to_float r *. 2.0`). Unwrap-then-compute hides
       which unit the formula is in; let-bind the unwrapped value (so
       the binding names the unit) or express the computation as a
       `Util.Units` combinator. `lib/util/units.ml` itself — where the
       combinators are defined — is exempt.
   U3  wire-format symmetry. For every `encode_X`/`decode_X` pair the
       linter walks `putN`/`getN` field accesses symbolically
       (offsets resolved through top-level integer constants, and the
       identifier `off` — the batch writers' item-origin parameter —
       resolving to 0): the writer must stay inside — and exactly fill —
       the declared `Bytes.make` budget, fixed-offset writes must not
       overlap, and every fixed field the writer emits must be read back
       by the decoder at the same offset and width (and vice versa).

   The allocation pass (the zero-allocation data plane, DESIGN.md §11):

   A1  arena bypass on the packet path, under `lib/sim` only. Two
       shapes: a packet-shaped record literal (a `route` field next to
       a `kind` or `hop` field — the pre-arena `Net.packet` layout,
       one heap block per packet), and `Array.copy` of anything
       route-named (routes are interned refcounted slices in
       `Arena.Ints`; copying one re-allocates per packet). Use the
       arena handle API instead.

   Since v3 two further rule families ride on top of this module's
   violation/suppression machinery but are implemented elsewhere
   (DESIGN.md §13):

   L1/L2  arena-lifetime rules over `lib/sim` (`Lint_life`): every
       `intern_route` / `Arena.alloc` handle must reach exactly one
       release on every path, and must never be touched after it.
   M1–M3  domain-safety rules over the typed tree (`Lint_typed`):
       every toplevel mutable item in `lib/` must be declared in the
       ownership registry `tools/lint/ownership.sexp`, and closures
       capturing shard-owned state must not escape their module.
   E1–E3  shard-safety rules over the inferred interprocedural effect
       map (`Lint_effects`, v4): writes to `shard_owned` regions that
       are reachable from the event-dispatch roots must be keyed by the
       handler's node argument, `shared_readonly` state is written only
       by its owning module (or inside a `(* lint: init *)` …
       `(* lint: init end *)` span), and order-sensitive float
       reductions over effectful iteration must not sit on a
       dispatch-reachable path.

   Rule tiers. Each linted root runs one of three tiers:

     Lib      (lib/)            — everything above.
     Default  (bin/, examples/) — D1, S1, S2, U1–U3.
     Relaxed  (bench/, test/)   — D-rules only: D1 and D3. D2 stays
              off because a bench times itself by design; the S/U
              rules stay off because harness code legitimately builds
              raw fixtures.

   A violation can be suppressed with a justification comment on the
   offending line or the line directly above it:

       (* lint: allow D3 — order-independent: folding a commutative max *)

   The rule list may name several rules (`allow D2 D3 — …`); the reason
   after the dash is mandatory, and a malformed or reason-less allow is
   itself reported (rule LINT) and cannot be suppressed. Every rule an
   allow names must suppress at least one violation: a fully unused
   allow is stale, and a multi-rule allow whose rules are only partly
   exercised reports the unused rule names at its file:line. The
   summary counts applied suppressions so reviewers can see how much of
   the codebase is exempted. *)

type violation = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

(* Internal tool errors (unreadable .cmt, registry syntax error, bad
   usage) — distinct from lint violations: the driver exits 2, not 1, so
   CI can tell "the code is dirty" from "the linter is broken". *)
exception Internal of string

(* A stale allow: the comment's position plus the named rules that
   suppressed nothing (all of them for a fully unused allow). *)
type stale_allow = {
  sa_file : string;
  sa_line : int;
  sa_rules : string list;
}

type report = {
  violations : violation list;  (* sorted by (file, line, rule) *)
  files : int;
  suppressed : int;  (* violations silenced by a valid allow *)
  suppressed_by_rule : (string * int) list;  (* rule -> applied suppressions *)
  unused_allows : stale_allow list;  (* allows (or rules of one) that silenced nothing *)
}

let rules =
  [
    "A1"; "D1"; "D2"; "D3"; "E1"; "E2"; "E3"; "L1"; "L2"; "M1"; "M2"; "M3"; "S1"; "S2";
    "U1"; "U2"; "U3";
  ]

(* Which parse-level rules run where. L/M rules are driven from
   Lint_driver (L needs the sim scope, M needs .cmt files) but share the
   suppression machinery below. *)
type tier = Lib | Default | Relaxed

let tier_of_root root =
  let base =
    Filename.basename
      (if Filename.check_suffix root "/" then Filename.chop_suffix root "/" else root)
  in
  match base with
  | "lib" -> Lib
  | "bench" | "test" -> Relaxed
  | _ -> Default

(* -- suppression comments ------------------------------------------------ *)

type allow = { allow_rules : string list; mutable used_rules : string list }

let is_rule_char c = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* Parses "lint: allow R1 R2 — reason" out of [line]. Returns
   [`None] (no marker), [`Malformed] or [`Allow rules]. *)
let parse_allow line =
  match find_substring line "lint: allow" with
  | None -> `None
  | Some i ->
      let rest = String.sub line (i + 11) (String.length line - i - 11) in
      (* Tokenize rule names up to the dash separator. *)
      let n = String.length rest in
      let rec rules_of j acc =
        if j >= n then (acc, n)
        else if rest.[j] = ' ' || rest.[j] = ',' then rules_of (j + 1) acc
        else if is_rule_char rest.[j] then begin
          let k = ref j in
          while !k < n && is_rule_char rest.[!k] do
            incr k
          done;
          rules_of !k (String.sub rest j (!k - j) :: acc)
        end
        else (acc, j)
      in
      let named, j = rules_of 0 [] in
      let named = List.rev named in
      (* Accept "—" (em dash), "--" or "-" as the reason separator. *)
      let rest = String.sub rest j (n - j) in
      let reason =
        let strip p s =
          let np = String.length p in
          if String.length s >= np && String.sub s 0 np = p then
            Some (String.sub s np (String.length s - np))
          else None
        in
        match (strip "\xe2\x80\x94" rest, strip "--" rest, strip "-" rest) with
        | Some r, _, _ | _, Some r, _ | _, _, Some r -> Some r
        | None, None, None -> None
      in
      let non_blank s = String.exists (fun c -> c <> ' ' && c <> '*' && c <> ')') s in
      let valid_rules = named <> [] && List.for_all (fun r -> List.mem r rules) named in
      (match reason with
      | Some r when valid_rules && non_blank r -> `Allow named
      | _ -> `Malformed)

let split_lines src =
  let out = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        out := String.sub src !start (i - !start) :: !out;
        start := i + 1
      end)
    src;
  out := String.sub src !start (String.length src - !start) :: !out;
  List.rev !out

(* -- AST checks ---------------------------------------------------------- *)

let path_of lid = String.concat "." (Longident.flatten lid)

let strip_stdlib p =
  if String.length p > 7 && String.sub p 0 7 = "Stdlib." then
    String.sub p 7 (String.length p - 7)
  else p

let has_root ~root p = p = root || String.length p > String.length root
                                   && String.sub p 0 (String.length root + 1) = root ^ "."

let clock_reads =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.gmtime";
    "Unix.localtime";
    "Sys.time";
    "Sys.getenv";
    "Sys.getenv_opt";
    "Unix.getenv";
    "Unix.environment";
  ]

let check_path ~check_d2 ~check_d3 add path loc =
  let p = strip_stdlib path in
  if has_root ~root:"Random" p then
    add "D1" loc
      (Printf.sprintf "'%s' is ambient nondeterministic state; use Util.Rng (seeded, splittable)"
         path);
  if check_d2 && List.mem p clock_reads then
    add "D2" loc
      (Printf.sprintf
         "'%s' reads the host clock/environment; lib/ results must be a function of the seed"
         path);
  if check_d3 && (p = "Hashtbl.iter" || p = "Hashtbl.fold") then
    add "D3" loc
      (Printf.sprintf
         "raw '%s' iterates in hash order (a rack-divergence hazard); use Util.Tbl.%s ~cmp:…"
         path
         (if p = "Hashtbl.iter" then "iter_sorted" else "fold_sorted"))

(* U1: the canonical unit table — labeled arguments that carry a physical
   quantity in the public API, with the constructor a raw literal must be
   wrapped in (DESIGN.md §10). *)
let unit_labels =
  [
    ("gbps", "Util.Units.gbps");
    ("link_gbps", "Util.Units.gbps");
    ("rate_gbps", "Util.Units.gbps");
    ("headroom", "Util.Units.fraction");
    ("load", "Util.Units.fraction");
    ("loss", "Util.Units.fraction");
    ("reorder", "Util.Units.fraction");
    ("dup", "Util.Units.fraction");
    ("demand", "Util.Units.byte_rate");
    ("rate", "Util.Units.byte_rate");
    ("allocation", "Util.Units.byte_rate");
    ("queued_bytes", "Util.Units.bytes");
  ]

let float_ops = [ "+."; "-."; "*."; "/."; "**" ]

let last_component lid =
  match (try Longident.flatten lid with Misc.Fatal_error -> []) with
  | [] -> ""
  | l -> List.nth l (List.length l - 1)

(* A1 helper: does an expression mention anything route-named (an ident or
   record field whose name contains "route")? Syntactic, like the rest of
   the pass — the naming convention is what makes routes greppable. *)
let mentions_route e =
  let found = ref false in
  let has_route s = find_substring s "route" <> None in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } when has_route (last_component txt) -> found := true
    | Pexp_field (_, { txt; _ }) when has_route (last_component txt) -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let lint_structure ~tier ~check_u2 ~check_a1 ~add structure =
  let open Parsetree in
  let check_d2 = tier = Lib in
  let check_d3 = tier = Lib || tier = Relaxed in
  let check_s = tier <> Relaxed in
  let check_u = tier <> Relaxed in
  let check_u2 = check_u && check_u2 in
  let is_float_lit e =
    match e.pexp_desc with Pexp_constant (Pconst_float _) -> true | _ -> false
  in
  let expr (iter : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        check_path ~check_d2 ~check_d3 add (path_of txt) loc;
        if check_s && strip_stdlib (path_of txt) = "Obj.magic" then
          add "S1" loc "'Obj.magic' defeats the type system"
    | Pexp_record (fields, _) when check_a1 ->
        let labels = List.map (fun (({ txt; _ } : _ Location.loc), _) -> last_component txt) fields in
        let has l = List.mem l labels in
        if has "route" && (has "kind" || has "hop") then
          add "A1" e.pexp_loc
            "packet-shaped record literal (route alongside kind/hop) allocates one heap \
             block per packet; packets are arena handles — allocate through Net/Arena and \
             use the packed accessors"
    | Pexp_apply (fn, args) ->
        (match fn.pexp_desc with
        | Pexp_ident { txt; loc } when check_a1 && strip_stdlib (path_of txt) = "Array.copy"
          -> (
            match args with
            | (_, arg) :: _ when mentions_route arg ->
                add "A1" loc
                  "'Array.copy' of a route allocates per packet; routes are interned \
                   refcounted slices — share the handle (Arena.Ints retain/release)"
            | _ -> ())
        | _ -> ());
        List.iter
          (fun ((lbl, a) : Asttypes.arg_label * expression) ->
            (if check_s then
               match a.pexp_desc with
               | Pexp_ident { txt = Longident.Lident "compare"; loc }
               | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Stdlib", "compare"); loc } ->
                   add "S2" loc
                     "bare polymorphic 'compare' as a comparator (NaN/tie-break hazard); use \
                      Int.compare, Float.compare or an explicit key comparator"
               | _ -> ());
            if check_u then
              match lbl with
              | Asttypes.Labelled l | Asttypes.Optional l -> (
                  match List.assoc_opt l unit_labels with
                  | Some ctor ->
                      let bare = is_float_lit a in
                      let in_some =
                        match a.pexp_desc with
                        | Pexp_construct ({ txt = Longident.Lident "Some"; _ }, Some inner) ->
                            is_float_lit inner
                        | _ -> false
                      in
                      if bare || in_some then
                        add "U1" a.pexp_loc
                          (Printf.sprintf
                             "raw float literal bound to unit-carrying label '~%s'; wrap it in \
                              its constructor, e.g. '~%s:(%s …)'"
                             l l ctor)
                  | None -> ())
              | Asttypes.Nolabel -> ())
          args;
        (match fn.pexp_desc with
        | Pexp_ident { txt = Longident.Lident op; _ }
          when check_u2 && List.mem op float_ops ->
            List.iter
              (fun ((_, a) : Asttypes.arg_label * expression) ->
                match a.pexp_desc with
                | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
                  when last_component txt = "to_float" ->
                    add "U2" loc
                      (Printf.sprintf
                         "'%s' applied directly to a 'to_float' result loses the unit; \
                          let-bind the unwrapped value or use a Util.Units combinator"
                         op)
                | _ -> ())
              args
        | _ -> ())
    | Pexp_try (_, cases) when check_s ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_any ->
                add "S1" c.pc_lhs.ppat_loc
                  "catch-all 'try … with _ ->' swallows every exception (including \
                   Assert_failure); match the specific exceptions instead"
            | _ -> ())
          cases
    | _ -> ());
    Ast_iterator.default_iterator.expr iter e
  in
  let check_open path loc =
    let p = strip_stdlib path in
    if has_root ~root:"Random" p then
      add "D1" loc "'open Random' imports ambient nondeterministic state; use Util.Rng";
    if check_d3 && has_root ~root:"Hashtbl" p then
      add "D3" loc "'open Hashtbl' hides raw iteration from this linter; qualify Hashtbl calls instead"
  in
  let open_description iter (od : open_description) =
    check_open (path_of od.popen_expr.txt) od.popen_loc;
    Ast_iterator.default_iterator.open_description iter od
  in
  (* `open M` in a structure (and `let open M in …`) carries a module
     expression, not a bare path. *)
  let open_declaration iter (od : open_declaration) =
    (match od.popen_expr.pmod_desc with
    | Pmod_ident { txt; _ } -> check_open (path_of txt) od.popen_loc
    | _ -> ());
    Ast_iterator.default_iterator.open_declaration iter od
  in
  let iterator =
    { Ast_iterator.default_iterator with expr; open_description; open_declaration }
  in
  iterator.structure iterator structure

(* -- U3: wire-format budget and encoder/decoder symmetry ------------------ *)

(* Fixed-width field accessors, by the last component of the called path.
   Both the Wire helpers (put16/get16) and the raw Bytes primitives they
   wrap are understood, so the walk survives inlining a helper. *)
let put_widths =
  [
    ("put8", 1);
    ("put16", 2);
    ("put32", 4);
    ("put64", 8);
    ("set_uint8", 1);
    ("set_uint16_be", 2);
    ("set_int32_be", 4);
    ("set_int64_be", 8);
  ]

let get_widths =
  [
    ("get8", 1);
    ("get16", 2);
    ("get32", 4);
    ("get64", 8);
    ("get_uint8", 1);
    ("get_uint16_be", 2);
    ("get_int32_be", 4);
    ("get_int64_be", 8);
  ]

type access = {
  a_off : int option;  (* None: offset is computed, not statically resolvable *)
  a_width : int;
  a_loc : Location.t;
}

type wire_fn = {
  w_name : string;
  w_loc : Location.t;
  w_size : (int option * Location.t) option;  (* Bytes.make budget, if any *)
  w_puts : access list;
  w_gets : access list;
}

(* Top-level `let name = <int literal>` bindings: the offset/size constants
   the symbolic walk resolves through. *)
let int_consts structure =
  let open Parsetree in
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left
            (fun acc vb ->
              match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
              | Ppat_var { txt; _ }, Pexp_constant (Pconst_integer (s, None)) -> (
                  match int_of_string_opt s with Some v -> (txt, v) :: acc | None -> acc)
              | _ -> acc)
            acc vbs
      | _ -> acc)
    [] structure

let rec resolve_int consts (e : Parsetree.expression) =
  let open Parsetree in
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, None)) -> int_of_string_opt s
  | Pexp_ident { txt = Longident.Lident "off"; _ } when not (List.mem_assoc "off" consts)
    ->
      (* Symbolic batch base: a writer taking [~off] and addressing
         [off + field] is the whole-buffer encoder relocated to an item
         origin, so the budget and symmetry checks hold with [off] = 0.
         Only the literal name [off] gets this treatment, and a top-level
         [off] constant still wins. *)
      Some 0
  | Pexp_ident { txt = Longident.Lident n; _ } -> List.assoc_opt n consts
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "+"; _ }; _ }, [ (_, a); (_, b) ])
    -> (
      match (resolve_int consts a, resolve_int consts b) with
      | Some x, Some y -> Some (x + y)
      | _ -> None)
  | _ -> None

(* Collect Bytes.make budgets and putN/getN accesses inside one function
   body. *)
let collect_accesses consts body =
  let open Parsetree in
  let size = ref None and puts = ref [] and gets = ref [] in
  let expr (iter : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
        let name = last_component txt in
        let full = strip_stdlib (path_of txt) in
        if full = "Bytes.make" && !size = None then begin
          match args with
          | (_, sz) :: _ -> size := Some (resolve_int consts sz, loc)
          | [] -> ()
        end;
        let record store width =
          (* putN buf off v / getN buf off: the offset is the second
             positional argument. *)
          match args with
          | _ :: (_, off) :: _ ->
              store := { a_off = resolve_int consts off; a_width = width; a_loc = loc } :: !store
          | _ -> ()
        in
        match (List.assoc_opt name put_widths, List.assoc_opt name get_widths) with
        | Some w, _ -> record puts w
        | None, Some w -> record gets w
        | None, None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr iter e
  in
  let iterator = { Ast_iterator.default_iterator with expr } in
  iterator.expr iterator body;
  (!size, List.rev !puts, List.rev !gets)

let wire_fns structure =
  let open Parsetree in
  let consts = int_consts structure in
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left
            (fun acc vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ }
                when String.length txt > 7
                     && (String.sub txt 0 7 = "encode_" || String.sub txt 0 7 = "decode_") ->
                  let w_size, w_puts, w_gets = collect_accesses consts vb.pvb_expr in
                  { w_name = txt; w_loc = vb.pvb_pat.ppat_loc; w_size; w_puts; w_gets } :: acc
              | _ -> acc)
            acc vbs
      | _ -> acc)
    [] structure
  |> List.rev

let static accesses = List.filter_map (fun a -> Option.map (fun o -> (o, a)) a.a_off) accesses

let lint_wire ~add structure =
  let fns = wire_fns structure in
  let encoders = List.filter (fun f -> String.sub f.w_name 0 7 = "encode_") fns in
  (* Budget: every statically-addressed write stays inside the declared
     Bytes.make size, never overlaps a sibling, and — when every write is
     static — exactly fills the budget. *)
  List.iter
    (fun f ->
      match f.w_size with
      | Some (Some size, size_loc) ->
          let statics = List.sort (fun (a, _) (b, _) -> Int.compare a b) (static f.w_puts) in
          let dynamic = List.exists (fun a -> a.a_off = None) f.w_puts in
          List.iter
            (fun (off, a) ->
              if off + a.a_width > size then
                add "U3" a.a_loc
                  (Printf.sprintf
                     "'%s' writes %d byte(s) at offset %d, overrunning its declared size %d"
                     f.w_name a.a_width off size))
            statics;
          let rec overlaps = function
            | (o1, a1) :: ((o2, a2) :: _ as rest) ->
                if o1 + a1.a_width > o2 then
                  add "U3" a2.a_loc
                    (Printf.sprintf
                       "'%s': the %d-byte write at offset %d overlaps the %d-byte write at \
                        offset %d"
                       f.w_name a2.a_width o2 a1.a_width o1);
                overlaps rest
            | _ -> []
          in
          ignore (overlaps statics);
          if (not dynamic) && statics <> [] then begin
            let last = List.fold_left (fun m (o, a) -> max m (o + a.a_width)) 0 statics in
            if last < size then
              add "U3" size_loc
                (Printf.sprintf
                   "'%s' declares a %d-byte packet but its writes end at byte %d (%d byte(s) \
                    of slack)"
                   f.w_name size last (size - last))
          end
      | _ -> ())
    encoders;
  (* Symmetry: the decoder must read back exactly the fixed fields the
     encoder wrote — same offsets, same widths. *)
  List.iter
    (fun enc ->
      let base = String.sub enc.w_name 7 (String.length enc.w_name - 7) in
      match List.find_opt (fun f -> f.w_name = "decode_" ^ base) fns with
      | None -> ()
      | Some dec ->
          let writes = static enc.w_puts and reads = static dec.w_gets in
          let mem (o, a) l = List.exists (fun (o', a') -> o = o' && a.a_width = a'.a_width) l in
          List.iter
            (fun (o, a) ->
              if not (mem (o, a) reads) then
                add "U3" a.a_loc
                  (Printf.sprintf
                     "'%s' writes %d byte(s) at offset %d that '%s' never reads back at that \
                      offset/width"
                     enc.w_name a.a_width o dec.w_name))
            writes;
          List.iter
            (fun (o, a) ->
              if not (mem (o, a) writes) then
                add "U3" a.a_loc
                  (Printf.sprintf
                     "'%s' reads %d byte(s) at offset %d that '%s' never writes at that \
                      offset/width"
                     dec.w_name a.a_width o enc.w_name))
            reads)
    encoders

(* -- scan / finalize ------------------------------------------------------ *)

(* A scanned file: raw (unsuppressed) violations plus its allow table.
   Kept open so Lint_driver can merge in typed-tree (M) and lifetime (L)
   violations attributed to the same file before suppression runs. *)
type scanned = {
  s_file : string;
  mutable s_raw : violation list;
  s_allows : (int, allow) Hashtbl.t;
  s_structure : Parsetree.structure option;  (* None when the file does not parse *)
}

let in_sim file = List.mem "sim" (String.split_on_char '/' file)

(* The allow table of one source file plus the malformed-allow (LINT)
   violations — shared between the `.ml` scan below and the comment-only
   `.mli` scan (`scan_allows_only`). *)
let scan_allow_lines ~file src =
  let allows = Hashtbl.create 8 in
  let raw = ref [] in
  List.iteri
    (fun i line ->
      match parse_allow line with
      | `None -> ()
      | `Allow rs -> Hashtbl.replace allows (i + 1) { allow_rules = rs; used_rules = [] }
      | `Malformed ->
          raw :=
            {
              file;
              line = i + 1;
              rule = "LINT";
              message =
                "malformed suppression; expected '(* lint: allow RULE — reason *)' with a \
                 non-empty reason";
            }
            :: !raw)
    (split_lines src);
  (allows, !raw)

(* `(* lint: init *)` … `(* lint: init end *)` spans: the E2 rule's
   initialization windows. Returns inclusive (start, stop) line pairs;
   an unclosed opener extends to end of file. Matching is the same raw
   line scan the allow table uses, so the markers work in any comment
   style. *)
let init_spans src =
  let spans = ref [] and opened = ref None in
  List.iteri
    (fun i line ->
      let l = i + 1 in
      if find_substring line "lint: init end" <> None then (
        match !opened with
        | Some s ->
            spans := (s, l) :: !spans;
            opened := None
        | None -> ())
      else if find_substring line "lint: init" <> None then
        match !opened with None -> opened := Some l | Some _ -> ())
    (split_lines src);
  (match !opened with Some s -> spans := (s, max_int) :: !spans | None -> ());
  List.rev !spans

let scan_source ~file ~tier src =
  let allows, raw0 = scan_allow_lines ~file src in
  let raw = ref raw0 in
  let add rule (loc : Location.t) message =
    let line = loc.loc_start.pos_lnum in
    raw := { file; line; rule; message } :: !raw
  in
  let structure =
    try
      let lexbuf = Lexing.from_string src in
      Location.init lexbuf file;
      let structure = Parse.implementation lexbuf in
      (* The combinator definitions in Util.Units are the one place raw
         arithmetic on unwrapped floats is the point. *)
      let check_u2 = Filename.basename file <> "units.ml" in
      (* A1 patrols the packet-rate data plane only: any file under a
         `sim` directory component. *)
      let check_a1 = tier = Lib && in_sim file in
      lint_structure ~tier ~check_u2 ~check_a1 ~add structure;
      if tier <> Relaxed then lint_wire ~add structure;
      Some structure
    with exn ->
      let message =
        match exn with
        | Syntaxerr.Error _ -> "syntax error: file does not parse"
        | _ -> Printf.sprintf "parse failure: %s" (Printexc.to_string exn)
      in
      raw := { file; line = 1; rule = "LINT"; message } :: !raw;
      None
  in
  { s_file = file; s_raw = !raw; s_allows = allows; s_structure = structure }

(* Comment-only scan for interface files: builds the allow table (so
   stale allows in `.mli` files are reported like `.ml` ones) without
   attempting to parse the file as an implementation. *)
let scan_allows_only ~file src =
  let allows, raw = scan_allow_lines ~file src in
  { s_file = file; s_raw = raw; s_allows = allows; s_structure = None }

let add_violations scanned vs = scanned.s_raw <- vs @ scanned.s_raw

(* Applies the allow table: drops suppressed violations, counts
   suppressions per rule, and reports stale allows (including the unused
   rule names of a partially-used multi-rule allow). *)
let finalize scanned =
  let suppressed = ref 0 in
  let suppressed_rules = ref [] in
  let keep v =
    if v.rule = "LINT" then true (* malformed allows are never suppressible *)
    else begin
      let covered line =
        match Hashtbl.find_opt scanned.s_allows line with
        | Some a when List.mem v.rule a.allow_rules ->
            if not (List.mem v.rule a.used_rules) then a.used_rules <- v.rule :: a.used_rules;
            true
        | _ -> false
      in
      (* The allow may sit on the offending line or directly above it. *)
      if covered v.line || covered (v.line - 1) then begin
        incr suppressed;
        suppressed_rules := v.rule :: !suppressed_rules;
        false
      end
      else true
    end
  in
  let violations =
    List.sort
      (fun a b ->
        let c = Int.compare a.line b.line in
        if c <> 0 then c else String.compare a.rule b.rule)
      (List.filter keep scanned.s_raw)
  in
  let unused =
    List.sort
      (fun a b -> Int.compare a.sa_line b.sa_line)
      (Hashtbl.fold
         (fun line a acc ->
           let stale = List.filter (fun r -> not (List.mem r a.used_rules)) a.allow_rules in
           if stale = [] then acc
           else { sa_file = scanned.s_file; sa_line = line; sa_rules = stale } :: acc)
         scanned.s_allows [])
  in
  let by_rule =
    List.map
      (fun r -> (r, List.length (List.filter (String.equal r) !suppressed_rules)))
      rules
  in
  {
    violations;
    files = 1;
    suppressed = !suppressed;
    suppressed_by_rule = by_rule;
    unused_allows = unused;
  }

(* Back-compat single-file entry (parse rules only; the L/M passes are
   composed by Lint_driver). [in_lib] maps to the Lib/Default tiers. *)
let lint_source ?tier ~file ~in_lib src =
  let tier = match tier with Some t -> t | None -> if in_lib then Lib else Default in
  finalize (scan_source ~file ~tier src)

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let lint_file ~in_lib file = lint_source ~file ~in_lib (read_file file)

(* -- tree walking -------------------------------------------------------- *)

let rec files_under ~suffix path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries (* Sys.readdir order is unspecified *);
    Array.fold_left
      (fun acc e -> acc @ files_under ~suffix (Filename.concat path e))
      [] entries
  end
  else if Filename.check_suffix path suffix then [ path ]
  else []

let ml_files_under = files_under ~suffix:".ml"
let mli_files_under = files_under ~suffix:".mli"

let merge a b =
  {
    violations = a.violations @ b.violations;
    files = a.files + b.files;
    suppressed = a.suppressed + b.suppressed;
    suppressed_by_rule =
      List.map
        (fun r ->
          let n l = try List.assoc r l with Not_found -> 0 in
          (r, n a.suppressed_by_rule + n b.suppressed_by_rule))
        rules;
    unused_allows = a.unused_allows @ b.unused_allows;
  }

let empty =
  {
    violations = [];
    files = 0;
    suppressed = 0;
    suppressed_by_rule = List.map (fun r -> (r, 0)) rules;
    unused_allows = [];
  }

let lint_root root =
  let in_lib = tier_of_root root = Lib in
  List.fold_left (fun acc f -> merge acc (lint_file ~in_lib f)) empty (ml_files_under root)

let lint_roots roots = List.fold_left (fun acc r -> merge acc (lint_root r)) empty roots

(* -- reporting ----------------------------------------------------------- *)

let pp_violation oc v =
  Printf.fprintf oc "%s:%d: [%s] %s\n" v.file v.line v.rule v.message

let pp_stale oc sa =
  Printf.fprintf oc
    "%s:%d: stale 'lint: allow %s' — %s nothing; delete %s\n"
    sa.sa_file sa.sa_line
    (String.concat " " sa.sa_rules)
    (match sa.sa_rules with [ _ ] -> "it suppresses" | _ -> "these rules suppress")
    (match sa.sa_rules with [ _ ] -> "it" | _ -> "them from the allow")

let report_and_exit_code oc r =
  List.iter (pp_violation oc) r.violations;
  List.iter (pp_stale oc) r.unused_allows;
  Printf.fprintf oc
    "r2c2-lint: %d file(s), %d violation(s), %d suppression(s) applied, %d stale allow(s)\n"
    r.files (List.length r.violations) r.suppressed (List.length r.unused_allows);
  Printf.fprintf oc "  per rule (violations/suppressions):";
  List.iter
    (fun rule ->
      let v = List.length (List.filter (fun x -> x.rule = rule) r.violations) in
      let s = try List.assoc rule r.suppressed_by_rule with Not_found -> 0 in
      Printf.fprintf oc " %s %d/%d" rule v s)
    (rules @ [ "LINT" ]);
  Printf.fprintf oc "\n";
  if r.violations = [] && r.unused_allows = [] then 0 else 1
