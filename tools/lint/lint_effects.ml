(* E-rules: shard-safety proof over an inferred interprocedural effect
   map (DESIGN.md §15).

   The multicore port (ROADMAP: sharded event loop across OCaml 5
   domains) needs more than the per-declaration ownership registry: it
   must know which registered regions each event handler touches
   *transitively* — a handler that calls three modules deep into the
   congestion allocator writes `Waterfill` state just as surely as one
   that writes it inline. This pass builds that proof:

     1. every toplevel function in `lib/` is a node of a call graph; a
        reference to a known function is a call edge (so a function
        passed as an argument contributes its effects at the call site
        that names it — first-order closure flow without a points-to
        analysis);
     2. a node's *direct* effects are the registry regions its body
        reads or writes (`:=`, `<-` on mutable fields, and the stdlib
        mutator table: Hashtbl / Array / Bytes / Buffer / Queue /
        Atomic / …), with lambda bodies walked inline;
     3. a worklist fixpoint propagates effects over the edges to a
        transitive summary per function.

   An application whose target cannot be named is *widened*: the node
   goes to ⊤ ("may touch anything") and ⊤ propagates to callers like
   any other effect. Two deliberate exceptions keep ⊤ rare enough to
   mean something: applying one of the function's own parameters
   (recorded as `param_ho`) does not widen — whatever was passed in
   was named, and therefore edged, at some call site — and neither do
   calls into external modules (Stdlib, List, …), which are
   effect-neutral on registry regions except through the lambdas the
   walk inlines anyway. Reachability from the dispatch roots follows
   known call edges only; ⊤ does not expand it (a widened node's
   *effects* are unbounded, but inventing edges out of it would make
   every rule fire everywhere and the report useless).

   Rules, judged against reachability from the event-dispatch roots
   (the `Sim.Engine`, `Sim.R2c2_sim` and `R2c2.Stack` toplevels):

   E1  a reachable function writes a `shard_owned` region without
       keying the write by the handler's own node argument (the
       registry entry's `(key …)` field names which argument);
   E2  a `shared_readonly` region is written outside its owning module
       — unless the write sits in a `(* lint: init *)` …
       `(* lint: init end *)` span, the sanctioned setup window;
   E3  a reachable function folds a float reduction (`+.`/`*.`) over a
       mutable region: summation order would differ across shards, the
       numeric-determinism hazard for the pinned torus digest.

   The pass also emits the *cut-set* (SHARD_REPORT.json): every region
   reachable code can write, classified `witnessed` (a concrete write
   path names it, with the writing functions) or `widened` (in the set
   only because some reachable node went to ⊤). The multicore PR must
   wrap exactly these regions in per-domain queues or messages; CI
   ratchets the set so it can only shrink. *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)
module ISet = Set.Make (Int)

(* -- generic fixpoint solver ---------------------------------------------- *)

(* Kept abstract over int node/region ids so the qcheck differential can
   drive it with generated graphs (cycles, diamonds, widening) against a
   naive whole-program reference evaluator. *)

type direct = { d_reads : ISet.t; d_writes : ISet.t; d_widened : bool }
type summary = { e_reads : ISet.t; e_writes : ISet.t; e_widened : bool }

let of_direct d = { e_reads = d.d_reads; e_writes = d.d_writes; e_widened = d.d_widened }

(* effects(F) = direct(F) ∪ ⋃ effects(callee); classic reverse-edge
   worklist, O(edges × regions) in practice. *)
let solve directs calls =
  let n = Array.length directs in
  let summ = Array.map of_direct directs in
  let callers = Array.make n [] in
  Array.iteri
    (fun f gs ->
      List.iter (fun g -> if g >= 0 && g < n then callers.(g) <- f :: callers.(g)) gs)
    calls;
  let queue = Queue.create () in
  let queued = Array.make n true in
  for i = 0 to n - 1 do
    Queue.add i queue
  done;
  while not (Queue.is_empty queue) do
    let f = Queue.pop queue in
    queued.(f) <- false;
    let s =
      List.fold_left
        (fun acc g ->
          if g < 0 || g >= n then acc
          else
            let sg = summ.(g) in
            {
              e_reads = ISet.union acc.e_reads sg.e_reads;
              e_writes = ISet.union acc.e_writes sg.e_writes;
              e_widened = acc.e_widened || sg.e_widened;
            })
        (of_direct directs.(f))
        calls.(f)
    in
    let cur = summ.(f) in
    if
      not
        (ISet.equal s.e_reads cur.e_reads
        && ISet.equal s.e_writes cur.e_writes
        && s.e_widened = cur.e_widened)
    then begin
      summ.(f) <- s;
      List.iter
        (fun c ->
          if not queued.(c) then begin
            queued.(c) <- true;
            Queue.add c queue
          end)
        callers.(f)
    end
  done;
  summ

let reachable calls roots =
  let n = Array.length calls in
  let seen = Array.make n false in
  let rec go f =
    if f >= 0 && f < n && not seen.(f) then begin
      seen.(f) <- true;
      List.iter go calls.(f)
    end
  in
  List.iter go roots;
  seen

(* -- name resolution ------------------------------------------------------- *)

let default_roots = [ "Sim.Engine."; "Sim.R2c2_sim."; "R2c2.Stack." ]
let contains s sub = Lint_core.find_substring s sub <> None

let last_component s =
  match String.rindex_opt s '.' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let owner_of item =
  match String.rindex_opt item '.' with Some i -> String.sub item 0 i | None -> item

(* `module U = Util.Units` makes `U.kbps` spell `Util.Units.kbps`; the
   alias map rewrites the first path component before scope lookup. *)
let rewrite_alias aliases raw =
  match String.index_opt raw '.' with
  | Some i -> (
      match SMap.find_opt (String.sub raw 0 i) aliases with
      | Some full -> full ^ String.sub raw i (String.length raw - i)
      | None -> raw)
  | None -> raw

(* Resolve a normalized reference against a set of fully-qualified
   names, trying each enclosing scope prefix the way OCaml's scoping
   does (innermost submodule first, the unit, then fully qualified). *)
let resolve ~aliases ~scopes set raw =
  let raw = rewrite_alias aliases raw in
  List.find_map
    (fun p ->
      let c = p ^ raw in
      if SSet.mem c set then Some c else None)
    scopes

(* -- typed-tree extraction ------------------------------------------------- *)

(* Written-container and key-argument positions, keyed on the stripped
   full path of the callee (`a.(i) <- v` reaches the typed tree as
   `Array.set`, so the sugar is covered). *)
let mutators =
  [
    (":=", (0, None)); ("incr", (0, None)); ("decr", (0, None));
    ("Hashtbl.replace", (0, Some 1)); ("Hashtbl.add", (0, Some 1));
    ("Hashtbl.remove", (0, Some 1)); ("Hashtbl.reset", (0, None));
    ("Hashtbl.clear", (0, None)); ("Hashtbl.filter_map_inplace", (1, None));
    ("Array.set", (0, Some 1)); ("Array.unsafe_set", (0, Some 1));
    ("Array.fill", (0, None)); ("Array.blit", (2, None));
    ("Bytes.set", (0, Some 1)); ("Bytes.unsafe_set", (0, Some 1));
    ("Bytes.fill", (0, None)); ("Bytes.blit", (2, None));
    ("Bytes.blit_string", (2, None));
    ("Buffer.add_char", (0, None)); ("Buffer.add_string", (0, None));
    ("Buffer.add_bytes", (0, None)); ("Buffer.add_subbytes", (0, None));
    ("Buffer.add_substring", (0, None)); ("Buffer.add_buffer", (0, None));
    ("Buffer.clear", (0, None)); ("Buffer.reset", (0, None));
    ("Buffer.truncate", (0, None));
    ("Queue.push", (1, None)); ("Queue.add", (1, None)); ("Queue.pop", (0, None));
    ("Queue.take", (0, None)); ("Queue.clear", (0, None));
    ("Queue.transfer", (1, None));
    ("Atomic.set", (0, None)); ("Atomic.exchange", (0, None));
    ("Atomic.incr", (0, None)); ("Atomic.decr", (0, None));
    ("Atomic.fetch_and_add", (0, None)); ("Atomic.compare_and_set", (0, None));
  ]

(* Read accessors a write can reach its container through:
   `(Hashtbl.find shards node).q <- v` writes the region behind
   `shards`, keyed by `node`. *)
let accessors =
  [
    ("!", (0, None));
    ("Hashtbl.find", (0, Some 1)); ("Hashtbl.find_opt", (0, Some 1));
    ("Array.get", (0, Some 1)); ("Array.unsafe_get", (0, Some 1));
  ]

type wsite = { ws_region : string; ws_line : int; ws_keyed : bool }
type fsite = { fs_line : int; fs_regions : string list }

type node = {
  nd_name : string;
  nd_file : string;
  mutable nd_line : int;
  mutable nd_reads : SSet.t;
  mutable nd_writes : SSet.t;
  mutable nd_calls : SSet.t;
  mutable nd_widened : bool;
  mutable nd_param_ho : bool;
  mutable nd_wsites : wsite list;
  mutable nd_folds : fsite list;
}

type decl = {
  dc_scopes : string list;
  dc_name : string;
  dc_is_fn : bool;
  dc_file : string;
  dc_line : int;
  dc_expr : Typedtree.expression;
}

let rec is_fn_expr (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function _ -> true
  | Texp_let (_, _, body) -> is_fn_expr body
  | _ -> false

(* Eta-reduced aliases (`let get16 = Bytes.get_uint16_be`) and partial
   applications (`let warn = log Warning`) are functions too, even
   though no `fun` appears: judge by the binding's type, or every
   application of such an alias would widen its callers to ⊤. *)
let rec is_arrow ty =
  match Types.get_desc ty with
  | Tarrow _ -> true
  | Tpoly (t, _) -> is_arrow t
  | _ -> false

let rec pattern_vars acc (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> SSet.add (Ident.name id) acc
  | Tpat_alias (sub, id, _) -> pattern_vars (SSet.add (Ident.name id) acc) sub
  | Tpat_tuple ps | Tpat_construct (_, _, ps, _) | Tpat_array ps ->
      List.fold_left pattern_vars acc ps
  | Tpat_variant (_, Some p, _) | Tpat_lazy p -> pattern_vars acc p
  | Tpat_record (fields, _) ->
      List.fold_left (fun acc (_, _, p) -> pattern_vars acc p) acc fields
  | Tpat_or (a, b, _) -> pattern_vars (pattern_vars acc a) b
  | Tpat_any | Tpat_constant _ | Tpat_variant (_, None, _) -> acc

(* The binders of the function's outer `fun`-spine — the arguments E1's
   keyed-write check may match against. A multi-case `function` stops
   the spine but still contributes its case binders (`function Some
   node -> …` binds [node]). *)
let rec spine_params acc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } -> (
      let acc =
        List.fold_left (fun acc c -> pattern_vars acc c.Typedtree.c_lhs) acc cases
      in
      match cases with [ { c_rhs; _ } ] -> spine_params acc c_rhs | _ -> acc)
  | Texp_let (_, _, body) -> spine_params acc body
  | _ -> acc

(* Every toplevel binding of a unit, recursing into literal submodules.
   Function bindings get their own node; everything else (non-function
   bindings, `let () = …`, toplevel evals) pools into the unit's
   `(init)` pseudo-node — module-initialization effects matter to E2
   but are not dispatch roots. Module aliases accumulate per unit. *)
let collect_unit (unit_ : Lint_typed.unit_info) =
  let decls = ref [] and aliases = ref SMap.empty in
  let init_name = unit_.u_name ^ ".(init)" in
  let rec go scopes (str : Typedtree.structure) =
    let prefix = List.hd scopes in
    List.iter
      (fun (item : Typedtree.structure_item) ->
        let line = item.str_loc.Location.loc_start.pos_lnum in
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                let mk name is_fn =
                  decls :=
                    {
                      dc_scopes = scopes;
                      dc_name = name;
                      dc_is_fn = is_fn;
                      dc_file = unit_.u_file;
                      dc_line = vb.vb_loc.Location.loc_start.pos_lnum;
                      dc_expr = vb.vb_expr;
                    }
                    :: !decls
                in
                match Lint_typed.binding_var vb.vb_pat with
                | Some { txt; _ }
                  when is_fn_expr vb.vb_expr || is_arrow vb.vb_pat.pat_type ->
                    mk (prefix ^ txt) true
                | _ -> mk init_name false)
              vbs
        | Tstr_eval (e, _) ->
            decls :=
              {
                dc_scopes = scopes;
                dc_name = init_name;
                dc_is_fn = false;
                dc_file = unit_.u_file;
                dc_line = line;
                dc_expr = e;
              }
              :: !decls
        | Tstr_module mb -> go_mb scopes mb
        | Tstr_recmodule mbs -> List.iter (go_mb scopes) mbs
        | _ -> ())
      str.str_items
  and go_mb scopes (mb : Typedtree.module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let rec peel (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> `Str s
      | Tmod_constraint (inner, _, _, _) -> peel inner
      | Tmod_ident (p, _) -> `Alias (Lint_typed.normalize_path_name (Path.name p))
      | _ -> `Other
    in
    match peel mb.mb_expr with
    | `Str s -> go ((List.hd scopes ^ name ^ ".") :: scopes) s
    | `Alias full -> aliases := SMap.add name full !aliases
    | `Other -> ()
  in
  go [ unit_.u_name ^ "."; "" ] unit_.u_str;
  (List.rev !decls, !aliases)

(* Walk one binding's body, accumulating direct effects into [node].
   [known] / [regions] are the full-name universes; [region_key] maps a
   shard_owned region to its declared `(key …)` argument name. *)
let walk_decl ~known ~regions ~region_key ~aliases node dc =
  let scopes = dc.dc_scopes in
  let norm p = Lint_typed.normalize_path_name (Path.name p) in
  let resolve_fn raw = resolve ~aliases ~scopes known raw in
  let resolve_region raw = resolve ~aliases ~scopes regions raw in
  let params = if dc.dc_is_fn then spine_params SSet.empty dc.dc_expr else SSet.empty in
  (* let-bound names whose definiens is itself a function or a named
     reference: applying them is not a widening event, because whatever
     they denote was already edged (or is external) where it was named. *)
  let safe = ref SSet.empty in
  let idents_of e =
    let out = ref [] in
    let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
      (match e.exp_desc with Texp_ident (p, _, _) -> out := p :: !out | _ -> ());
      Tast_iterator.default_iterator.expr it e
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.expr it e;
    List.rev !out
  in
  (* Does [e] mention one of the function's own arguments whose name
     matches the region's declared key? ("node" matches `node`,
     `node_id`, `dst_node`, …) *)
  let key_matches key e =
    let k = String.lowercase_ascii key in
    List.exists
      (function
        | Path.Pident id ->
            let n = Ident.name id in
            SSet.mem n params && contains (String.lowercase_ascii n) k
        | _ -> false)
      (idents_of e)
  in
  (* Raw last component, not [norm]: the normalizer splits on '.' and
     would collapse the operator `+.` into integer `+`. *)
  let float_op e =
    List.exists
      (fun p ->
        let n = Path.last p in
        n = "+." || n = "*.")
      (idents_of e)
  in
  let regions_of e =
    List.fold_left
      (fun acc p -> match resolve_region (norm p) with Some r -> SSet.add r acc | None -> acc)
      SSet.empty (idents_of e)
  in
  (* The region a write's container expression bottoms out in, plus the
     key expressions crossed on the way (field projections are
     transparent; indexed reads contribute their key argument). *)
  let rec root_access (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        match resolve_region (norm p) with Some r -> Some (r, []) | None -> None)
    | Texp_field (b, _, _) -> root_access b
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        match List.assoc_opt (norm p) accessors with
        | Some (ci, ki) -> (
            let argexprs = List.filter_map snd args in
            match List.nth_opt argexprs ci with
            | Some ce -> (
                match root_access ce with
                | Some (r, keys) ->
                    let keys =
                      match ki with
                      | Some kidx -> (
                          match List.nth_opt argexprs kidx with
                          | Some ke -> ke :: keys
                          | None -> keys)
                      | None -> keys
                    in
                    Some (r, keys)
                | None -> None)
            | None -> None)
        | None -> None)
    | _ -> None
  in
  let add_write ~line r keys =
    let keyed =
      match SMap.find_opt r region_key with
      | Some key -> List.exists (key_matches key) keys
      | None -> false
    in
    node.nd_writes <- SSet.add r node.nd_writes;
    node.nd_wsites <- { ws_region = r; ws_line = line; ws_keyed = keyed } :: node.nd_wsites
  in
  let handle_apply (app : Typedtree.expression) (head : Typedtree.expression) args =
    let argexprs = List.filter_map snd args in
    let line = app.exp_loc.Location.loc_start.pos_lnum in
    match head.exp_desc with
    | Texp_ident (path, _, _) -> (
        let raw = norm path in
        (match List.assoc_opt raw mutators with
        | Some (ci, ki) -> (
            match List.nth_opt argexprs ci with
            | Some ce -> (
                match root_access ce with
                | Some (r, keys) ->
                    let keys =
                      match ki with
                      | Some kidx -> (
                          match List.nth_opt argexprs kidx with
                          | Some ke -> ke :: keys
                          | None -> keys)
                      | None -> keys
                    in
                    add_write ~line r keys
                | None -> ())
            | None -> ())
        | None -> ());
        (if contains (String.lowercase_ascii (last_component raw)) "fold" then
           let touched =
             List.fold_left (fun acc e -> SSet.union acc (regions_of e)) SSet.empty argexprs
           in
           if (not (SSet.is_empty touched)) && List.exists float_op argexprs then
             node.nd_folds <-
               { fs_line = line; fs_regions = SSet.elements touched } :: node.nd_folds);
        match path with
        | Path.Pident id ->
            let name = Ident.name id in
            if SSet.mem name params then node.nd_param_ho <- true
            else if SSet.mem name !safe then ()
            else if resolve_fn raw <> None then ()
            else node.nd_widened <- true
        | _ ->
            (* Dotted head: a known function's edge was recorded at the
               ident; anything else is an external call, neutral on
               registry regions. *)
            ())
    | Texp_function _ -> () (* beta redex; the body is walked inline *)
    | _ ->
        (* `t.dispatch …`, applying an apply's result, …: the target is
           unnameable — this is the widening event. *)
        node.nd_widened <- true
  in
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) ->
        let raw = norm p in
        (match resolve_fn raw with
        | Some f -> node.nd_calls <- SSet.add f node.nd_calls
        | None -> ());
        (match resolve_region raw with
        | Some r -> node.nd_reads <- SSet.add r node.nd_reads
        | None -> ())
    | Texp_let (_, vbs, _) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match Lint_typed.binding_var vb.vb_pat with
            | Some { txt; _ } -> (
                match vb.vb_expr.exp_desc with
                | Texp_function _ | Texp_ident _ -> safe := SSet.add txt !safe
                | _ -> ())
            | None -> ())
          vbs
    | Texp_setfield (base, _, _, _) -> (
        match root_access base with
        | Some (r, keys) -> add_write ~line:e.exp_loc.Location.loc_start.pos_lnum r keys
        | None -> ())
    | Texp_apply (head, args) -> handle_apply e head args
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it dc.dc_expr

(* -- the E pass ------------------------------------------------------------ *)

type fn_effect = {
  f_name : string;
  f_reads : string list;  (* transitive *)
  f_writes : string list;
  f_widened : bool;
  f_param_ho : bool;
  f_reachable : bool;
}

type cut_entry = {
  c_item : string;
  c_class : string;
  c_key : string option;
  c_via : string;  (* "witnessed" | "widened" *)
  c_writers : string list;
}

type result = {
  eff_violations : Lint_core.violation list;
  fn_effects : fn_effect list;  (* effectful / widened / param_ho nodes only *)
  cut_set : cut_entry list;
  analyzed_fns : int;
  reachable_fns : int;
  eff_roots : string list;
}

let analyze ?(roots = default_roots) ?init_spans ~(registry : Lint_typed.registry) units =
  (* Region universe and per-region class/key, first entry winning on
     the duplicates M1 already flags. *)
  let region_class = ref SMap.empty and region_key = ref SMap.empty in
  List.iter
    (fun (e : Lint_typed.reg_entry) ->
      if not (SMap.mem e.r_item !region_class) then begin
        region_class := SMap.add e.r_item e.r_class !region_class;
        match e.r_key with
        | Some k -> region_key := SMap.add e.r_item k !region_key
        | None -> ()
      end)
    registry.entries;
  let regions = SMap.fold (fun k _ acc -> SSet.add k acc) !region_class SSet.empty in
  (* Pass 1: every unit's declarations and aliases; the function-name
     universe. *)
  let per_unit = List.map (fun u -> (u, collect_unit u)) units in
  let known =
    List.fold_left
      (fun acc (_, (decls, _)) ->
        List.fold_left
          (fun acc dc -> if dc.dc_is_fn then SSet.add dc.dc_name acc else acc)
          acc decls)
      SSet.empty per_unit
  in
  (* Pass 2: direct effects per node. Shadowed re-definitions and the
     per-unit init bindings merge into one node. *)
  let nodes = Hashtbl.create 256 in
  let node_of dc =
    match Hashtbl.find_opt nodes dc.dc_name with
    | Some n ->
        if dc.dc_line < n.nd_line then n.nd_line <- dc.dc_line;
        n
    | None ->
        let n =
          {
            nd_name = dc.dc_name;
            nd_file = dc.dc_file;
            nd_line = dc.dc_line;
            nd_reads = SSet.empty;
            nd_writes = SSet.empty;
            nd_calls = SSet.empty;
            nd_widened = false;
            nd_param_ho = false;
            nd_wsites = [];
            nd_folds = [];
          }
        in
        Hashtbl.add nodes dc.dc_name n;
        n
  in
  List.iter
    (fun (_, (decls, aliases)) ->
      List.iter
        (fun dc ->
          walk_decl ~known ~regions ~region_key:!region_key ~aliases (node_of dc) dc)
        decls)
    per_unit;
  let names =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) nodes [])
  in
  let node_arr = Array.of_list (List.map (Hashtbl.find nodes) names) in
  let n = Array.length node_arr in
  let idx_of = Hashtbl.create n in
  Array.iteri (fun i nd -> Hashtbl.replace idx_of nd.nd_name i) node_arr;
  let region_names = SSet.elements regions in
  let ridx = Hashtbl.create 16 in
  List.iteri (fun i r -> Hashtbl.replace ridx r i) region_names;
  let rset s =
    SSet.fold (fun r acc -> ISet.add (Hashtbl.find ridx r) acc) s ISet.empty
  in
  let directs =
    Array.map
      (fun nd ->
        { d_reads = rset nd.nd_reads; d_writes = rset nd.nd_writes; d_widened = nd.nd_widened })
      node_arr
  in
  let calls =
    Array.map
      (fun nd ->
        SSet.fold
          (fun c acc -> match Hashtbl.find_opt idx_of c with Some i -> i :: acc | None -> acc)
          nd.nd_calls [])
      node_arr
  in
  let summaries = solve directs calls in
  let root_idx =
    List.concat_map
      (fun prefix ->
        List.filter_map
          (fun nd ->
            if Lint_typed.starts_with ~prefix nd.nd_name then
              Hashtbl.find_opt idx_of nd.nd_name
            else None)
          (Array.to_list node_arr))
      roots
  in
  let reach = reachable calls root_idx in
  (* init spans, for E2's setup-window exemption: explicit in tests,
     read from the unit sources on disk otherwise. *)
  let spans =
    match init_spans with
    | Some s -> s
    | None ->
        List.filter_map
          (fun (u : Lint_typed.unit_info) ->
            if Sys.file_exists u.u_file then
              Some (u.u_file, Lint_core.init_spans (Lint_core.read_file u.u_file))
            else None)
          units
  in
  let in_init_span file line =
    match List.assoc_opt file spans with
    | Some sp -> List.exists (fun (a, b) -> line >= a && line <= b) sp
    | None -> false
  in
  let violations = ref [] in
  let add file line rule message =
    violations := { Lint_core.file; line; rule; message } :: !violations
  in
  Array.iteri
    (fun i nd ->
      let class_of r = SMap.find_opt r !region_class in
      (* E1: unkeyed shard_owned writes on a dispatch-reachable path. *)
      if reach.(i) then
        List.iter
          (fun ws ->
            if class_of ws.ws_region = Some "shard_owned" && not ws.ws_keyed then
              add nd.nd_file ws.ws_line "E1"
                (match SMap.find_opt ws.ws_region !region_key with
                | Some key ->
                    Printf.sprintf
                      "'%s' is reachable from the dispatch roots and writes shard_owned \
                       '%s' without keying by its '%s' argument — under sharding this is \
                       a cross-shard write"
                      nd.nd_name ws.ws_region key
                | None ->
                    Printf.sprintf
                      "'%s' is reachable from the dispatch roots and writes shard_owned \
                       '%s', which declares no '(key …)' in the registry; name the \
                       sharding argument and key the write"
                      nd.nd_name ws.ws_region))
          nd.nd_wsites;
      (* E2: foreign writes to shared_readonly state, init spans exempt. *)
      List.iter
        (fun ws ->
          if class_of ws.ws_region = Some "shared_readonly" then
            let owner = owner_of ws.ws_region in
            if
              (not (Lint_typed.starts_with ~prefix:(owner ^ ".") nd.nd_name))
              && not (in_init_span nd.nd_file ws.ws_line)
            then
              add nd.nd_file ws.ws_line "E2"
                (Printf.sprintf
                   "'%s' writes shared_readonly '%s' from outside its owning module \
                    '%s'; shared_readonly state is frozen once the event loop starts — \
                    move the write into the owner or a '(* lint: init *)' span"
                   nd.nd_name ws.ws_region owner))
        nd.nd_wsites;
      (* E3: order-sensitive float folds over mutable regions on a
         reachable path. *)
      if reach.(i) then
        List.iter
          (fun fs ->
            add nd.nd_file fs.fs_line "E3"
              (Printf.sprintf
                 "'%s' is reachable from the dispatch roots and folds a float reduction \
                  (+. / *.) over mutable region%s %s; iteration order differs across \
                  shards — accumulate per shard and combine in a fixed order"
                 nd.nd_name
                 (if List.length fs.fs_regions > 1 then "s" else "")
                 (String.concat ", " fs.fs_regions)))
          nd.nd_folds)
    node_arr;
  (* Cut-set: regions reachable code can write. Witnessed regions carry
     their concrete writers; if any reachable node widened to ⊤, every
     remaining region enters via "widened" with the ⊤ nodes as writers. *)
  let witnessed = Hashtbl.create 16 in
  Array.iteri
    (fun i nd ->
      if reach.(i) then
        SSet.iter
          (fun r ->
            let cur = try Hashtbl.find witnessed r with Not_found -> SSet.empty in
            Hashtbl.replace witnessed r (SSet.add nd.nd_name cur))
          nd.nd_writes)
    node_arr;
  let widened_nodes =
    List.filteri (fun i _ -> reach.(i) && directs.(i).d_widened) (Array.to_list node_arr)
    |> List.map (fun nd -> nd.nd_name)
  in
  let cut_set =
    List.filter_map
      (fun r ->
        let cls = match SMap.find_opt r !region_class with Some c -> c | None -> "?" in
        let key = SMap.find_opt r !region_key in
        match Hashtbl.find_opt witnessed r with
        | Some writers ->
            Some
              {
                c_item = r;
                c_class = cls;
                c_key = key;
                c_via = "witnessed";
                c_writers = SSet.elements writers;
              }
        | None ->
            if widened_nodes <> [] then
              Some
                {
                  c_item = r;
                  c_class = cls;
                  c_key = key;
                  c_via = "widened";
                  c_writers = widened_nodes;
                }
            else None)
      region_names
  in
  let fn_effects =
    Array.to_list node_arr
    |> List.mapi (fun i nd -> (i, nd))
    |> List.filter_map (fun (i, nd) ->
           let s = summaries.(i) in
           if ISet.is_empty s.e_reads && ISet.is_empty s.e_writes && (not s.e_widened)
              && not nd.nd_param_ho
           then None
           else
             let name_of_set iset =
               ISet.fold (fun ri acc -> List.nth region_names ri :: acc) iset []
               |> List.sort String.compare
             in
             Some
               {
                 f_name = nd.nd_name;
                 f_reads = name_of_set s.e_reads;
                 f_writes = name_of_set s.e_writes;
                 f_widened = s.e_widened;
                 f_param_ho = nd.nd_param_ho;
                 f_reachable = reach.(i);
               })
  in
  let reachable_fns = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 reach in
  {
    eff_violations = List.rev !violations;
    fn_effects;
    cut_set;
    analyzed_fns = n;
    reachable_fns;
    eff_roots = roots;
  }
