(* Tests for lib/topology: grid construction, distances, trees, failures. *)

let tc name f = Alcotest.test_case name `Quick f

let torus333 = lazy (Topology.torus [| 3; 3; 3 |])
let torus44 = lazy (Topology.torus [| 4; 4 |])
let mesh44 = lazy (Topology.mesh [| 4; 4 |])
let torus888 = lazy (Topology.torus [| 8; 8; 8 |])

let torus_counts () =
  let t = Lazy.force torus333 in
  Alcotest.(check int) "27 nodes" 27 (Topology.host_count t);
  Alcotest.(check int) "equal vertices" 27 (Topology.vertex_count t);
  (* 3D torus with k=3: every node has 6 neighbors -> 27*6 directed links *)
  Alcotest.(check int) "162 directed links" 162 (Topology.link_count t)

let torus_degree_uniform () =
  let t = Lazy.force torus333 in
  for v = 0 to 26 do
    Alcotest.(check int) "degree 6" 6 (Topology.degree t v)
  done

let mesh_corner_degree () =
  let t = Lazy.force mesh44 in
  Alcotest.(check int) "corner degree 2" 2 (Topology.degree t 0);
  (* interior node (1,1) = 1 + 4 = 5 *)
  Alcotest.(check int) "interior degree 4" 4 (Topology.degree t 5)

let k2_dimension_no_double_link () =
  let t = Topology.torus [| 2; 2 |] in
  (* k=2 wraparound degenerates: each node has exactly 2 neighbors. *)
  for v = 0 to 3 do
    Alcotest.(check int) "degree 2" 2 (Topology.degree t v)
  done

let coords_roundtrip () =
  let t = Lazy.force torus333 in
  for v = 0 to 26 do
    Alcotest.(check int) "roundtrip" v (Topology.of_coords t (Topology.coords t v))
  done

let torus_distance_analytic () =
  let t = Lazy.force torus44 in
  let d a b =
    Topology.distance t (Topology.of_coords t [| fst a; snd a |])
      (Topology.of_coords t [| fst b; snd b |])
  in
  Alcotest.(check int) "adjacent" 1 (d (0, 0) (1, 0));
  Alcotest.(check int) "wraparound" 1 (d (0, 0) (3, 0));
  Alcotest.(check int) "diagonal" 4 (d (0, 0) (2, 2));
  Alcotest.(check int) "self" 0 (d (1, 1) (1, 1))

let distance_symmetric () =
  let t = Lazy.force torus333 in
  for u = 0 to 26 do
    for v = 0 to 26 do
      Alcotest.(check int) "symmetric" (Topology.distance t u v) (Topology.distance t v u)
    done
  done

let mesh_no_wrap () =
  let t = Lazy.force mesh44 in
  let a = Topology.of_coords t [| 0; 0 |] and b = Topology.of_coords t [| 3; 0 |] in
  Alcotest.(check int) "no wrap: 3 hops" 3 (Topology.distance t a b)

let diameter_torus () =
  Alcotest.(check int) "4x4 torus diameter" 4 (Topology.diameter (Lazy.force torus44));
  Alcotest.(check int) "8x8x8 torus diameter" 12 (Topology.diameter (Lazy.force torus888))

let average_distance_512 () =
  (* k-ary n-cube uniform average ~ n*k/4 = 6 for 8x8x8. *)
  let avg = Topology.average_distance (Lazy.force torus888) in
  Alcotest.(check bool) "near 6 hops" true (abs_float (avg -. 6.0) < 0.2)

let bisection_values () =
  Alcotest.(check int) "8x8x8 torus" 256 (Topology.bisection_links (Lazy.force torus888));
  Alcotest.(check int) "4x4 torus" 16 (Topology.bisection_links (Lazy.force torus44));
  Alcotest.(check int) "4x4 mesh" 8 (Topology.bisection_links (Lazy.force mesh44))

let productive_hops_shrink_distance () =
  let t = Lazy.force torus888 in
  let rng = Util.Rng.create 3 in
  for _ = 1 to 200 do
    let u = Util.Rng.int rng 512 and d = Util.Rng.int rng 512 in
    if u <> d then begin
      let hops = Topology.productive_hops t u ~dst:d in
      Alcotest.(check bool) "at least one productive hop" true (Array.length hops > 0);
      Array.iter
        (fun (v, l) ->
          Alcotest.(check int) "distance decreases" (Topology.distance t u d - 1)
            (Topology.distance t v d);
          Alcotest.(check int) "link src" u (Topology.link_src t l);
          Alcotest.(check int) "link dst" v (Topology.link_dst t l))
        hops
    end
  done

let find_link_consistent () =
  let t = Lazy.force torus44 in
  for v = 0 to 15 do
    Array.iter
      (fun (u, l) ->
        Alcotest.(check (option int)) "find_link finds it" (Some l) (Topology.find_link t v u))
      (Topology.out_links t v)
  done;
  Alcotest.(check (option int)) "non-adjacent" None (Topology.find_link t 0 10)

let clos_structure () =
  let t = Topology.clos ~leaves:4 ~spines:2 ~servers_per_leaf:4 in
  Alcotest.(check int) "16 hosts" 16 (Topology.host_count t);
  Alcotest.(check int) "22 vertices" 22 (Topology.vertex_count t);
  (* server-server same leaf: 2 hops; across leaves: 4 hops *)
  Alcotest.(check int) "same leaf" 2 (Topology.distance t 0 1);
  Alcotest.(check int) "cross leaf" 4 (Topology.distance t 0 15);
  Alcotest.(check int) "bisection" 8 (Topology.bisection_links t)

let spanning_tree_is_shortest () =
  let t = Lazy.force torus888 in
  let root = 17 in
  for variant = 0 to 3 do
    let parent = Topology.shortest_path_tree t ~root ~variant in
    Alcotest.(check int) "root is own parent" root parent.(root);
    (* Every vertex reached, and tree depth equals BFS distance. *)
    let rec depth v = if v = root then 0 else 1 + depth parent.(v) in
    for v = 0 to Topology.vertex_count t - 1 do
      Alcotest.(check bool) "reached" true (parent.(v) >= 0);
      Alcotest.(check int) "tree path is shortest" (Topology.distance t root v) (depth v)
    done
  done

let tree_variants_differ () =
  let t = Lazy.force torus888 in
  let p0 = Topology.shortest_path_tree t ~root:0 ~variant:0 in
  let p1 = Topology.shortest_path_tree t ~root:0 ~variant:1 in
  Alcotest.(check bool) "variants give different trees" true (p0 <> p1)

let tree_children_sizes () =
  let t = Lazy.force torus44 in
  let parent = Topology.shortest_path_tree t ~root:0 ~variant:0 in
  let children = Topology.tree_children parent ~root:0 in
  let total = Array.fold_left (fun acc c -> acc + List.length c) 0 children in
  Alcotest.(check int) "n-1 edges" 15 total

let tree_depth_torus () =
  let t = Lazy.force torus888 in
  let parent = Topology.shortest_path_tree t ~root:0 ~variant:0 in
  Alcotest.(check int) "depth = diameter" 12 (Topology.tree_depth parent ~root:0)

let remove_link_reroutes () =
  let t = Lazy.force torus44 in
  let t' = Topology.remove_link t 0 1 in
  Alcotest.(check (option int)) "link gone" None (Topology.find_link t' 0 1);
  Alcotest.(check (option int)) "reverse gone" None (Topology.find_link t' 1 0);
  (* Still connected: the shortest detour on a 2D torus is 3 hops (no
     single vertex is adjacent to both endpoints). *)
  Alcotest.(check int) "rerouted distance" 3 (Topology.distance t' 0 1);
  Alcotest.(check int) "original untouched" 1 (Topology.distance t 0 1)

let remove_link_rejects_non_adjacent () =
  let t = Lazy.force torus44 in
  Alcotest.check_raises "non-adjacent" (Invalid_argument "Topology.remove_link: vertices not adjacent")
    (fun () -> ignore (Topology.remove_link t 0 10))

let hypercube_structure () =
  let t = Topology.hypercube 4 in
  Alcotest.(check int) "16 nodes" 16 (Topology.host_count t);
  for v = 0 to 15 do
    Alcotest.(check int) "degree n" 4 (Topology.degree t v)
  done;
  Alcotest.(check int) "diameter n" 4 (Topology.diameter t);
  (* Distance = Hamming distance of vertex labels. *)
  let rng = Util.Rng.create 3 in
  for _ = 1 to 100 do
    let u = Util.Rng.int rng 16 and v = Util.Rng.int rng 16 in
    let hamming = ref 0 in
    for b = 0 to 3 do
      if (u lsr b) land 1 <> (v lsr b) land 1 then incr hamming
    done;
    Alcotest.(check int) "hamming distance" !hamming (Topology.distance t u v)
  done

let flattened_butterfly_structure () =
  let t = Topology.flattened_butterfly 4 in
  Alcotest.(check int) "16 nodes" 16 (Topology.host_count t);
  for v = 0 to 15 do
    Alcotest.(check int) "degree 2(k-1)" 6 (Topology.degree t v)
  done;
  Alcotest.(check int) "diameter 2" 2 (Topology.diameter t);
  (* Same row: 1 hop; different row and column: 2 hops. *)
  let id x y = Topology.of_coords t [| x; y |] in
  Alcotest.(check int) "same row" 1 (Topology.distance t (id 0 0) (id 3 0));
  Alcotest.(check int) "same column" 1 (Topology.distance t (id 0 0) (id 0 3));
  Alcotest.(check int) "diagonal" 2 (Topology.distance t (id 0 0) (id 2 3));
  (* Bisection: per row (k/2)^2 cables cross -> 2 * 4 * 4 directed. *)
  Alcotest.(check int) "bisection" 32 (Topology.bisection_links t)

let flattened_butterfly_routing () =
  let t = Topology.flattened_butterfly 4 in
  let ctx = Routing.make t in
  let rng = Util.Rng.create 5 in
  for _ = 1 to 50 do
    let src = Util.Rng.int rng 16 and dst = Util.Rng.int rng 16 in
    if src <> dst then begin
      let p = Routing.sample_path ctx rng Routing.Rps ~src ~dst in
      Alcotest.(check int) "minimal" (Topology.distance t src dst) (Array.length p - 1);
      (* Degree 6 fits the 3-bit wire selector. *)
      ignore (Wire.route_selectors ctx p)
    end
  done

let qcheck_bfs_matches_torus_formula =
  QCheck.Test.make ~name:"BFS distance = torus manhattan-with-wrap" ~count:300
    QCheck.(pair (int_bound 511) (int_bound 511))
    (fun (u, v) ->
      let t = Lazy.force torus888 in
      let cu = Topology.coords t u and cv = Topology.coords t v in
      let expected = ref 0 in
      for i = 0 to 2 do
        let d = abs (cu.(i) - cv.(i)) in
        expected := !expected + min d (8 - d)
      done;
      Topology.distance t u v = !expected)

let suites =
  [
    ( "topology",
      [
        tc "torus link/node counts" torus_counts;
        tc "torus degree uniform" torus_degree_uniform;
        tc "mesh corner degrees" mesh_corner_degree;
        tc "k=2 dims avoid duplicate cables" k2_dimension_no_double_link;
        tc "coords roundtrip" coords_roundtrip;
        tc "torus distances" torus_distance_analytic;
        tc "distance symmetric" distance_symmetric;
        tc "mesh has no wraparound" mesh_no_wrap;
        tc "diameters" diameter_torus;
        tc "512-node average distance ~6" average_distance_512;
        tc "bisection link counts" bisection_values;
        tc "productive hops shrink distance" productive_hops_shrink_distance;
        tc "find_link consistent with out_links" find_link_consistent;
        tc "clos structure" clos_structure;
        tc "spanning tree is shortest-path" spanning_tree_is_shortest;
        tc "tree variants differ" tree_variants_differ;
        tc "tree children count" tree_children_sizes;
        tc "tree depth equals diameter" tree_depth_torus;
        tc "remove_link reroutes" remove_link_reroutes;
        tc "remove_link validates" remove_link_rejects_non_adjacent;
        tc "hypercube structure" hypercube_structure;
        tc "flattened butterfly structure" flattened_butterfly_structure;
        tc "flattened butterfly routing + wire" flattened_butterfly_routing;
        QCheck_alcotest.to_alcotest qcheck_bfs_matches_torus_formula;
      ] );
  ]
