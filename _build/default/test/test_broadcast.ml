(* Tests for lib/broadcast: spanning trees, FIB, overhead model. *)

let tc name f = Alcotest.test_case name `Quick f

let torus888 = lazy (Topology.torus [| 8; 8; 8 |])

let tree_spans_everything () =
  let topo = Lazy.force torus888 in
  let b = Broadcast.make topo in
  let reached = Array.make (Topology.vertex_count topo) false in
  let rec walk v =
    Alcotest.(check bool) "visited once" false reached.(v);
    reached.(v) <- true;
    List.iter walk (Broadcast.children b ~src:0 ~tree:0 v)
  in
  walk 0;
  Alcotest.(check bool) "all vertices reached" true (Array.for_all Fun.id reached)

let tree_edge_count () =
  let topo = Lazy.force torus888 in
  let b = Broadcast.make topo in
  Alcotest.(check int) "n-1 edges" 511 (List.length (Broadcast.edges b ~src:3 ~tree:1))

let tree_depth_is_eccentricity () =
  let topo = Lazy.force torus888 in
  let b = Broadcast.make topo in
  (* Shortest-path tree depth = max distance from root = 12 on 8x8x8. *)
  for tree = 0 to 3 do
    Alcotest.(check int) "depth = diameter" 12 (Broadcast.depth b ~src:5 ~tree)
  done

let delivery_hops_are_shortest () =
  let topo = Lazy.force torus888 in
  let b = Broadcast.make topo in
  let hops = Broadcast.delivery_hops b ~src:9 ~tree:2 in
  for v = 0 to Topology.vertex_count topo - 1 do
    Alcotest.(check int) "tree delivery = shortest distance" (Topology.distance topo 9 v) hops.(v)
  done

let parents_consistent_with_children () =
  let topo = Topology.torus [| 4; 4 |] in
  let b = Broadcast.make topo in
  for v = 0 to 15 do
    List.iter
      (fun c -> Alcotest.(check int) "parent of child" v (Broadcast.parent b ~src:2 ~tree:0 c))
      (Broadcast.children b ~src:2 ~tree:0 v)
  done

let choose_tree_spreads () =
  let topo = Topology.torus [| 4; 4 |] in
  let b = Broadcast.make ~trees_per_source:4 topo in
  let rng = Util.Rng.create 3 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Broadcast.choose_tree b rng ~src:0) <- true
  done;
  Alcotest.(check bool) "all trees used" true (Array.for_all Fun.id seen)

let bytes_per_broadcast_512 () =
  (* §3.2: "with a 512-node rack, each broadcast results in ~8 KB". *)
  let topo = Lazy.force torus888 in
  Alcotest.(check int) "16 * 511" 8176 (Broadcast.bytes_per_broadcast topo)

let relative_overhead_10kb () =
  (* §3.2: a 10 KB flow's start+finish broadcasts cost ~26.66% of its wire
     bytes on the 512-node 3D torus. *)
  let topo = Lazy.force torus888 in
  let ov = Broadcast.relative_flow_overhead topo ~flow_bytes:10_000 in
  Alcotest.(check bool) (Printf.sprintf "~0.27 (got %.4f)" ov) true (abs_float (ov -. 0.27) < 0.02)

let relative_overhead_10mb () =
  (* §5.1: for 10 MB flows the overhead is ~0.026%. *)
  let topo = Lazy.force torus888 in
  let ov = Broadcast.relative_flow_overhead topo ~flow_bytes:10_000_000 in
  Alcotest.(check bool) "~0.00027" true (abs_float (ov -. 0.00027) < 0.00005)

let analytic_overhead_5pct () =
  (* §3.2: "When 5% of the bytes are carried by small flows, the fraction of
     the network capacity used for broadcasting flow information is only
     1.3%." *)
  let topo = Lazy.force torus888 in
  let ov =
    Broadcast.analytic_overhead topo ~frac_small_bytes:0.05 ~small_size:10_000
      ~large_size:35_000_000
  in
  Alcotest.(check bool) (Printf.sprintf "~1.3%% (got %.2f%%)" (100. *. ov)) true
    (abs_float (ov -. 0.013) < 0.002)

let analytic_overhead_monotone () =
  let topo = Lazy.force torus888 in
  let prev = ref (-1.0) in
  List.iter
    (fun frac ->
      let ov =
        Broadcast.analytic_overhead topo ~frac_small_bytes:frac ~small_size:10_000
          ~large_size:35_000_000
      in
      Alcotest.(check bool) "monotone in small-flow bytes" true (ov >= !prev);
      prev := ov)
    [ 0.0; 0.1; 0.2; 0.5; 1.0 ]

let greater_diameter_lower_overhead () =
  (* Fig. 9: topologies with greater diameter have lower broadcast overhead
     because data travels more hops. *)
  let ov topo =
    Broadcast.analytic_overhead topo ~frac_small_bytes:0.2 ~small_size:10_000
      ~large_size:35_000_000
  in
  let torus3d = ov (Lazy.force torus888) in
  let mesh3d = ov (Topology.mesh [| 8; 8; 8 |]) in
  let torus2d = ov (Topology.torus [| 32; 16 |]) in
  Alcotest.(check bool) "mesh < torus3d" true (mesh3d < torus3d);
  Alcotest.(check bool) "2D torus < 3D torus" true (torus2d < torus3d)

let qcheck_tree_spans =
  QCheck.Test.make ~name:"every (src, tree) FIB spans the rack" ~count:50
    QCheck.(pair (int_bound 63) (int_bound 3))
    (fun (src, tree) ->
      let topo = Topology.torus [| 4; 4; 4 |] in
      let b = Broadcast.make topo in
      let count = ref 0 in
      let rec walk v =
        incr count;
        List.iter walk (Broadcast.children b ~src ~tree v)
      in
      walk src;
      !count = 64)

let suites =
  [
    ( "broadcast",
      [
        tc "tree spans every vertex exactly once" tree_spans_everything;
        tc "tree has n-1 edges" tree_edge_count;
        tc "tree depth equals eccentricity" tree_depth_is_eccentricity;
        tc "delivery hops are shortest distances" delivery_hops_are_shortest;
        tc "parents consistent with children" parents_consistent_with_children;
        tc "tree choice load balances" choose_tree_spreads;
        tc "8 KB per 512-node broadcast (paper)" bytes_per_broadcast_512;
        tc "26.66% overhead for 10 KB flows (paper)" relative_overhead_10kb;
        tc "0.026% overhead for 10 MB flows (paper)" relative_overhead_10mb;
        tc "1.3% capacity at 5% small bytes (paper)" analytic_overhead_5pct;
        tc "overhead monotone in small-flow share" analytic_overhead_monotone;
        tc "greater diameter, lower overhead (Fig 9)" greater_diameter_lower_overhead;
        QCheck_alcotest.to_alcotest qcheck_tree_spans;
      ] );
  ]
