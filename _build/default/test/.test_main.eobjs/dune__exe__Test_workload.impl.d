test/test_workload.ml: Alcotest Array Congestion Filename Float Fun Lazy List Printf Routing Sys Topology Util Workload
