test/test_congestion.ml: Alcotest Array Congestion Hashtbl List Option Printf QCheck QCheck_alcotest Routing Topology Util Workload
