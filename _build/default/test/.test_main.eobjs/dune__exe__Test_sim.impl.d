test/test_sim.ml: Alcotest Array Broadcast Float Fun List Printf Sim Topology Util Workload
