test/test_emu.ml: Alcotest Array Emu Float Lazy List Printf Routing Sim Topology Util Workload
