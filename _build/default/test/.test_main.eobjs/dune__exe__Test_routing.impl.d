test/test_routing.ml: Alcotest Array Hashtbl Lazy List Option Printf QCheck QCheck_alcotest Routing Topology Util
