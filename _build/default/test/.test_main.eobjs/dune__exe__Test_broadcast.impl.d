test/test_broadcast.ml: Alcotest Array Broadcast Fun Lazy List Printf QCheck QCheck_alcotest Topology Util
