test/test_topology.ml: Alcotest Array Lazy List QCheck QCheck_alcotest Routing Topology Util Wire
