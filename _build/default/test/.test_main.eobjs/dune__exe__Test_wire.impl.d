test/test_wire.ml: Alcotest Array Bytes Gen List Option QCheck QCheck_alcotest Routing Topology Util Wire
