test/test_genetic.ml: Alcotest Array Float Genetic Lazy List Printf Routing Topology Util Workload
