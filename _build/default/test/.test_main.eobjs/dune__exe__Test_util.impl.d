test/test_util.ml: Alcotest Array Fun Gen Hashtbl List Option QCheck QCheck_alcotest Util
