test/test_integration.ml: Alcotest Array Broadcast Congestion List Printf QCheck QCheck_alcotest R2c2 Routing Sim Topology Util Wire Workload
