test/test_stack.ml: Alcotest Array List Printf R2c2 Routing Topology Util Wire Workload
