(* Bechamel micro-benchmarks of the stack's core primitives (§4.2):
   rate computation, link-fraction DP, wire encode/decode, broadcast-tree
   construction and one GA generation. One Test.make per experiment
   family. *)

open Bechamel
open Toolkit

let topo = lazy (Topology.torus [| 8; 8; 8 |])

let waterfill_inputs n =
  let topo = Lazy.force topo in
  let ctx = Routing.make topo in
  let rng = Util.Rng.create 3 in
  let h = Topology.host_count topo in
  let flows =
    Array.init n (fun i ->
        let src = Util.Rng.int rng h in
        let dst = (src + 1 + Util.Rng.int rng (h - 1)) mod h in
        Congestion.Waterfill.flow ~id:i (Routing.fractions ctx Routing.Rps ~src ~dst))
  in
  let capacities = Array.make (Topology.link_count topo) 1.25 in
  (capacities, flows)

let test_waterfill n =
  Test.make
    ~name:(Printf.sprintf "waterfill-%d-flows" n)
    (Staged.stage
       (let capacities, flows = waterfill_inputs n in
        fun () -> ignore (Congestion.Waterfill.allocate ~headroom:0.05 ~capacities flows)))

let test_fractions proto =
  Test.make
    ~name:(Printf.sprintf "fractions-%s" (Routing.protocol_name proto))
    (Staged.stage
       (let topo = Lazy.force topo in
        let rng = Util.Rng.create 5 in
        let h = Topology.host_count topo in
        fun () ->
          (* A fresh context per call so caching does not hide the cost. *)
          let ctx = Routing.make topo in
          let src = Util.Rng.int rng h in
          let dst = (src + (h / 2)) mod h in
          ignore (Routing.fractions ctx proto ~src ~dst)))

let test_wire_roundtrip =
  Test.make ~name:"wire-data-roundtrip"
    (Staged.stage
       (let header =
          {
            Wire.flow = 42;
            src = 17;
            dst = 391;
            seq = 12345;
            plen = 1465;
            route = Array.init 12 (fun i -> i mod 6);
            ridx = 0;
          }
        in
        fun () ->
          match Wire.decode_data (Wire.encode_data header) with
          | Ok _ -> ()
          | Error e -> failwith e))

let test_broadcast_tree =
  Test.make ~name:"broadcast-tree-build"
    (Staged.stage
       (let topo = Lazy.force topo in
        let i = ref 0 in
        fun () ->
          incr i;
          let b = Broadcast.make ~trees_per_source:1 topo in
          ignore (Broadcast.depth b ~src:(!i mod Topology.host_count topo) ~tree:0)))

let test_ga_generation =
  Test.make ~name:"ga-generation-32-flows"
    (Staged.stage
       (let topo = Topology.torus [| 4; 4; 4 |] in
        let ctx = Routing.make topo in
        let selector = Genetic.Selector.make ctx ~link_gbps:10.0 in
        let rng = Util.Rng.create 9 in
        let specs = Workload.Flowgen.permutation_long_flows topo rng ~load:0.5 in
        let flows =
          Array.of_list (List.map (fun (s : Workload.Flowgen.spec) -> (s.src, s.dst)) specs)
        in
        let init = Array.make (Array.length flows) Routing.Rps in
        fun () ->
          ignore
            (Genetic.Selector.select ~pop_size:8 ~generations:1 selector rng ~flows ~init)))

let tests () =
  Test.make_grouped ~name:"r2c2"
    [
      test_waterfill 100;
      test_waterfill 500;
      test_fractions Routing.Rps;
      test_fractions Routing.Dor;
      test_wire_roundtrip;
      test_broadcast_tree;
      test_ga_generation;
    ]

let run () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Printf.printf "%-40s %16s\n" "benchmark" "ns/run";
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Printf.printf "%-40s %16.0f\n" name est
          | _ -> Printf.printf "%-40s %16s\n" name "n/a")
        (List.sort compare rows))
    results
