bench/micro.ml: Analyze Array Bechamel Benchmark Broadcast Congestion Genetic Hashtbl Instance Lazy List Measure Printf Routing Staged Test Time Toolkit Topology Util Wire Workload
