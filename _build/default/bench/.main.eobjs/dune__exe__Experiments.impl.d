bench/experiments.ml: Array Broadcast Congestion Emu Gc Genetic Hashtbl List Option Printf R2c2 Routing Sim String Topology Unix Util Workload
