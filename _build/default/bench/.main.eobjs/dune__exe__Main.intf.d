bench/main.mli:
