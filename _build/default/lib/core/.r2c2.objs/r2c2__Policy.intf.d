lib/core/policy.mli:
