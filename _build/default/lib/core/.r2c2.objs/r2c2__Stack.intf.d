lib/core/stack.mli: Broadcast Routing Topology Util Wire
