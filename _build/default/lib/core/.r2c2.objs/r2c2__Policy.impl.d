lib/core/policy.ml:
