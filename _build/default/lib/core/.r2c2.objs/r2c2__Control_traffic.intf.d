lib/core/control_traffic.mli: Topology
