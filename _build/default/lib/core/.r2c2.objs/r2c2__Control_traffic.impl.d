lib/core/control_traffic.ml: Array Topology Wire
