lib/core/stack.ml: Array Broadcast Congestion Genetic Hashtbl List Option Routing Topology Util Wire
