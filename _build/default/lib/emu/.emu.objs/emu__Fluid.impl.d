lib/emu/fluid.ml: Array Congestion Float Hashtbl List Option Routing Topology Workload
