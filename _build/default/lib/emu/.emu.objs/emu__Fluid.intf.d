lib/emu/fluid.mli: Routing Topology Workload
