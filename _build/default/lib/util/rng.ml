type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value is a non-negative OCaml int. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t bound =
  (* 53 uniform bits in [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let pareto t ~shape ~scale =
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let categorical t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  assert (total > 0.0);
  let x = float t total in
  let n = Array.length w in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0
