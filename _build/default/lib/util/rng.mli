(** Deterministic pseudo-random number generation.

    A small, fast, seedable generator (SplitMix64) used by every stochastic
    component of the stack so that simulations, benchmarks and tests are
    reproducible given a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    subsequent draws from [t]. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Sample from an exponential distribution with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Sample from a Pareto distribution: P(X > x) = (scale/x)^shape for
    x >= scale. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)

val categorical : t -> float array -> int
(** [categorical t w] samples index [i] with probability [w.(i) / sum w].
    Weights must be non-negative with a positive sum. *)
