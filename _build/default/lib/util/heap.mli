(** Mutable binary min-heap keyed by integer priority.

    The simulator's event queue: priorities are times in nanoseconds.
    Entries with equal priority are popped in insertion order, which makes
    event processing deterministic. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push h priority v] inserts [v]. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum-priority entry. *)

val peek : 'a t -> (int * 'a) option

val clear : 'a t -> unit
