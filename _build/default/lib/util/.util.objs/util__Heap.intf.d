lib/util/heap.mli:
