lib/util/rng.mli:
