type flow = {
  id : int;
  weight : float;
  priority : int;
  demand : float option;
  links : (int * float) array;
}

let flow ?(weight = 1.0) ?(priority = 0) ?demand ~id links =
  { id; weight; priority; demand; links }

let eps = 1e-9

let validate flows capacities =
  Array.iter
    (fun f ->
      if f.weight <= 0.0 then invalid_arg "Waterfill: non-positive weight";
      (match f.demand with
      | Some d when d < 0.0 -> invalid_arg "Waterfill: negative demand"
      | _ -> ());
      Array.iter
        (fun (l, frac) ->
          if frac <= 0.0 then invalid_arg "Waterfill: non-positive fraction";
          if l < 0 || l >= Array.length capacities then
            invalid_arg "Waterfill: link id out of range")
        f.links)
    flows

(* One priority round of progressive filling over [indices], mutating
   [remaining] capacity and writing into [rates]. *)
let fill_round ~remaining ~rates flows indices =
  let nl = Array.length remaining in
  let frozen = Array.make (Array.length flows) false in
  (* Per-link sum of weight * fraction over unfrozen flows of this round. *)
  let wsum = Array.make nl 0.0 in
  let on_link = Array.make nl [] in
  List.iter
    (fun i ->
      let f = flows.(i) in
      Array.iter
        (fun (l, frac) ->
          wsum.(l) <- wsum.(l) +. (f.weight *. frac);
          on_link.(l) <- i :: on_link.(l))
        f.links)
    indices;
  let active = ref (List.length indices) in
  let t = ref 0.0 in
  (* Demand-limited flows freeze at fill level demand/weight. *)
  let demand_level i =
    match flows.(i).demand with Some d -> Some (d /. flows.(i).weight) | None -> None
  in
  while !active > 0 do
    (* Smallest fill increment that saturates a link or meets a demand. *)
    let dt = ref infinity in
    for l = 0 to nl - 1 do
      if wsum.(l) > eps then begin
        let step = remaining.(l) /. wsum.(l) in
        if step < !dt then dt := step
      end
    done;
    List.iter
      (fun i ->
        if not frozen.(i) then
          match demand_level i with
          | Some lvl when lvl -. !t < !dt -> dt := lvl -. !t
          | _ -> ())
      indices;
    if !dt = infinity then begin
      (* No constraining link and no demand: flows with no links; give 0. *)
      List.iter
        (fun i ->
          if not frozen.(i) then begin
            frozen.(i) <- true;
            rates.(i) <- flows.(i).weight *. !t;
            decr active
          end)
        indices
    end
    else begin
      let dt = max 0.0 !dt in
      t := !t +. dt;
      (* Drain capacity at the advanced fill level. *)
      for l = 0 to nl - 1 do
        if wsum.(l) > eps then remaining.(l) <- remaining.(l) -. (dt *. wsum.(l))
      done;
      (* Freeze flows on saturated links. *)
      for l = 0 to nl - 1 do
        if wsum.(l) > eps && remaining.(l) <= eps then begin
          List.iter
            (fun i ->
              if not frozen.(i) then begin
                frozen.(i) <- true;
                rates.(i) <- flows.(i).weight *. !t;
                decr active;
                Array.iter
                  (fun (l', frac) -> wsum.(l') <- wsum.(l') -. (flows.(i).weight *. frac))
                  flows.(i).links
              end)
            on_link.(l);
          remaining.(l) <- 0.0
        end
      done;
      (* Freeze flows whose demand is met. *)
      List.iter
        (fun i ->
          if not frozen.(i) then
            match demand_level i with
            | Some lvl when lvl <= !t +. eps -> begin
                frozen.(i) <- true;
                rates.(i) <- flows.(i).weight *. lvl;
                decr active;
                Array.iter
                  (fun (l', frac) -> wsum.(l') <- wsum.(l') -. (flows.(i).weight *. frac))
                  flows.(i).links
              end
            | _ -> ())
        indices
    end
  done

let by_priority flows =
  let by_prio = Hashtbl.create 4 in
  Array.iteri
    (fun i f ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_prio f.priority) in
      Hashtbl.replace by_prio f.priority (i :: cur))
    flows;
  let prios = List.sort_uniq compare (Hashtbl.fold (fun p _ acc -> p :: acc) by_prio []) in
  List.map (fun p -> List.rev (Hashtbl.find by_prio p)) prios

let allocate_reference ?(headroom = 0.0) ~capacities flows =
  if headroom < 0.0 || headroom >= 1.0 then invalid_arg "Waterfill: headroom out of range";
  validate flows capacities;
  let rates = Array.make (Array.length flows) 0.0 in
  let remaining = Array.map (fun c -> c *. (1.0 -. headroom)) capacities in
  List.iter (fun idx -> fill_round ~remaining ~rates flows idx) (by_priority flows);
  rates

(* -- efficient variant (§4.2) ------------------------------------------- *)

(* Min-heap on float keys with insertion-order tie-breaking; payloads carry
   a version for lazy deletion. *)
module Fheap = struct
  type 'a t = { mutable keys : float array; mutable vals : 'a array; mutable len : int }

  let create dummy = { keys = Array.make 64 0.0; vals = Array.make 64 dummy; len = 0 }

  let push h key v =
    if h.len = Array.length h.keys then begin
      let keys = Array.make (2 * h.len) 0.0 and vals = Array.make (2 * h.len) h.vals.(0) in
      Array.blit h.keys 0 keys 0 h.len;
      Array.blit h.vals 0 vals 0 h.len;
      h.keys <- keys;
      h.vals <- vals
    end;
    h.keys.(h.len) <- key;
    h.vals.(h.len) <- v;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
      let p = (!i - 1) / 2 in
      let k = h.keys.(p) and v' = h.vals.(p) in
      h.keys.(p) <- h.keys.(!i);
      h.vals.(p) <- h.vals.(!i);
      h.keys.(!i) <- k;
      h.vals.(!i) <- v';
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let key = h.keys.(0) and v = h.vals.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.keys.(0) <- h.keys.(h.len);
        h.vals.(0) <- h.vals.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.len && h.keys.(l) < h.keys.(!s) then s := l;
          if r < h.len && h.keys.(r) < h.keys.(!s) then s := r;
          if !s = !i then continue := false
          else begin
            let k = h.keys.(!s) and v' = h.vals.(!s) in
            h.keys.(!s) <- h.keys.(!i);
            h.vals.(!s) <- h.vals.(!i);
            h.keys.(!i) <- k;
            h.vals.(!i) <- v';
            i := !s
          end
        done
      end;
      Some (key, v)
    end
end

(* Operation counters for the performance ablation (bench `ablation`). *)
let dbg_pops = ref 0
let dbg_valid = ref 0
let dbg_scan = ref 0
let dbg_push = ref 0

type event = Link_sat of int (* link *) | Demand_met of int (* flow index *)

(* One priority round, event-driven: a heap orders link saturations and
   demand caps by fill level. Each link keeps exactly ONE heap entry whose
   key is a lower bound on its true saturation level (the level can only
   grow as other flows freeze and stop loading the link). On pop the true
   level is recomputed: if it moved, the entry is re-inserted at the new
   key; otherwise the link saturates and its flows freeze. Keeping the
   heap at O(links) entries keeps every sift in cache, which is what makes
   this the fast variant. *)
let fast_round ~remaining ~rates flows indices =
  let nl = Array.length remaining in
  let wsum = Array.make nl 0.0 in
  let last_t = Array.make nl 0.0 in
  let queued = Array.make nl false in
  let on_link = Array.make nl [] in
  let frozen = Array.make (Array.length flows) false in
  let heap = Fheap.create (Demand_met 0) in
  let settle l t =
    if t > last_t.(l) then begin
      remaining.(l) <- Float.max 0.0 (remaining.(l) -. (wsum.(l) *. (t -. last_t.(l))));
      last_t.(l) <- t
    end
  in
  let sat_level l =
    if wsum.(l) > eps then last_t.(l) +. (remaining.(l) /. wsum.(l)) else infinity
  in
  List.iter
    (fun i ->
      let f = flows.(i) in
      Array.iter
        (fun (l, frac) ->
          wsum.(l) <- wsum.(l) +. (f.weight *. frac);
          on_link.(l) <- i :: on_link.(l))
        f.links)
    indices;
  List.iter
    (fun i ->
      let f = flows.(i) in
      Array.iter
        (fun (l, _) ->
          if not queued.(l) then begin
            queued.(l) <- true;
            incr dbg_push;
            Fheap.push heap (sat_level l) (Link_sat l)
          end)
        f.links;
      match f.demand with
      | Some d -> Fheap.push heap (d /. f.weight) (Demand_met i)
      | None -> ())
    indices;
  let active = ref (List.length indices) in
  let freeze_flow i level =
    if not frozen.(i) then begin
      frozen.(i) <- true;
      rates.(i) <- flows.(i).weight *. level;
      decr active;
      Array.iter
        (fun (l, frac) ->
          settle l level;
          wsum.(l) <- Float.max 0.0 (wsum.(l) -. (flows.(i).weight *. frac)))
        flows.(i).links
    end
  in
  let rec drain () =
    if !active > 0 then begin
      match Fheap.pop heap with
      | None ->
          (* No constraining event left: flows with no links get 0. *)
          List.iter (fun i -> freeze_flow i 0.0) indices
      | Some (key, Link_sat l) ->
          incr dbg_pops;
          let cur = sat_level l in
          if cur = infinity then () (* no unfrozen flow loads this link *)
          else if cur > key +. (1e-12 *. (1.0 +. abs_float key)) then begin
            (* The level moved since this entry was queued; re-insert. *)
            incr dbg_push;
            Fheap.push heap cur (Link_sat l)
          end
          else begin
            incr dbg_valid;
            settle l cur;
            List.iter
              (fun i ->
                incr dbg_scan;
                freeze_flow i cur)
              on_link.(l)
          end;
          drain ()
      | Some (key, Demand_met i) ->
          freeze_flow i key;
          drain ()
    end
  in
  drain ()

let allocate ?(headroom = 0.0) ~capacities flows =
  if headroom < 0.0 || headroom >= 1.0 then invalid_arg "Waterfill: headroom out of range";
  validate flows capacities;
  let rates = Array.make (Array.length flows) 0.0 in
  let remaining = Array.map (fun c -> c *. (1.0 -. headroom)) capacities in
  List.iter (fun idx -> fast_round ~remaining ~rates flows idx) (by_priority flows);
  rates

let link_utilization ~capacities flows rates =
  let load = Array.make (Array.length capacities) 0.0 in
  Array.iteri
    (fun i f -> Array.iter (fun (l, frac) -> load.(l) <- load.(l) +. (rates.(i) *. frac)) f.links)
    flows;
  Array.mapi (fun l x -> if capacities.(l) > 0.0 then x /. capacities.(l) else 0.0) load

let bottleneck_fill ~capacities flows =
  let nl = Array.length capacities in
  let wsum = Array.make nl 0.0 in
  Array.iter
    (fun f ->
      Array.iter (fun (l, frac) -> wsum.(l) <- wsum.(l) +. (f.weight *. frac)) f.links)
    flows;
  let fill = ref infinity in
  for l = 0 to nl - 1 do
    if wsum.(l) > eps then begin
      let step = capacities.(l) /. wsum.(l) in
      if step < !fill then fill := step
    end
  done;
  !fill
