type t = { period_ns : float; ewma : Util.Stats.ewma }

let create ?(alpha = 0.5) ~period_ns () =
  if period_ns <= 0 then invalid_arg "Demand.create: period must be positive";
  { period_ns = float_of_int period_ns; ewma = Util.Stats.ewma_create ~alpha }

let observe t ~rate ~queued_bytes =
  let d = rate +. (queued_bytes /. t.period_ns) in
  Util.Stats.ewma_update t.ewma d

let estimate t = Util.Stats.ewma_value t.ewma

let is_host_limited t ~allocation = estimate t < allocation
