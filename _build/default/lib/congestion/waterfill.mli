(** Weighted max-min rate allocation by progressive filling (paper §3.3).

    Every flow comes with its per-link rate fractions (from
    {!Routing.fractions}): a flow sending at rate [r] loads link [l] with
    [r *. frac]. The allocator raises the fill level of all flows of the
    highest priority at equal weighted pace, freezing flows as links
    saturate or demands are met, then repeats for the next priority level
    with the leftover capacity (§3.3.2, "Beyond per-flow fairness").

    A [headroom] fraction of every link's capacity is set aside to absorb
    flows that have started but are not yet globally visible (§3.3.2). *)

type flow = {
  id : int;  (** opaque; echoed back in results *)
  weight : float;  (** allocation weight, > 0 *)
  priority : int;  (** 0 is served first *)
  demand : float option;  (** rate cap for host-limited flows *)
  links : (int * float) array;  (** (link id, fraction), fractions > 0 *)
}

val flow :
  ?weight:float -> ?priority:int -> ?demand:float -> id:int -> (int * float) array -> flow
(** Convenience constructor; weight defaults to 1, priority to 0. *)

val allocate : ?headroom:float -> capacities:float array -> flow array -> float array
(** [allocate ~capacities flows] returns the rate of each flow, indexed as
    the input array. [capacities.(l)] is link [l]'s capacity in rate units.
    [headroom] (default 0) is the capacity fraction left unallocated.
    Raises [Invalid_argument] on non-positive weights or fractions.

    This is the paper's "efficient variant of the water-filling algorithm"
    (§4.2): saturation events are processed from a heap with lazy per-link
    settlement, so the cost is near-linear in the total number of
    (flow, link) incidences rather than iterations times links. *)

val allocate_reference : ?headroom:float -> capacities:float array -> flow array -> float array
(** Textbook progressive filling [12]: raise all rates at equal weighted
    pace, scan every link for the next saturation, repeat. Quadratic but
    obviously correct — the oracle that {!allocate} is property-tested
    against. *)

val link_utilization : capacities:float array -> flow array -> float array -> float array
(** [link_utilization ~capacities flows rates] is each link's load divided
    by its capacity; for checking feasibility in tests. *)

val bottleneck_fill : capacities:float array -> flow array -> float
(** Fill level at which the first link saturates when all flows rise
    together — the single-iteration core of progressive filling, exposed
    for the channel-load analysis. *)

(**/**)

val dbg_pops : int ref
val dbg_valid : int ref
val dbg_scan : int ref
val dbg_push : int ref
