lib/congestion/demand.mli:
