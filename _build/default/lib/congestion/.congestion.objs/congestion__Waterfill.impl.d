lib/congestion/waterfill.ml: Array Float Hashtbl List Option
