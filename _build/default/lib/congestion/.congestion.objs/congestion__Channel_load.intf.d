lib/congestion/channel_load.mli: Routing
