lib/congestion/waterfill.mli:
