lib/congestion/demand.ml: Util
