lib/congestion/channel_load.ml: Array List Routing Topology
