lib/workload/flowgen.ml: Array Float List Topology Util
