lib/workload/trace.ml: Flowgen Fun List Printf String
