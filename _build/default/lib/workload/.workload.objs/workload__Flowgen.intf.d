lib/workload/flowgen.mli: Topology Util
