lib/workload/pattern.mli: Routing Topology
