lib/workload/trace.mli: Flowgen
