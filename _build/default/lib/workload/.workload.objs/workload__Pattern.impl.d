lib/workload/pattern.ml: Array Congestion List Routing Topology Util
