type event = Arrive of Flowgen.spec | Depart of { time_ns : int; flow : int }

type t = event list

let of_specs specs = List.map (fun s -> Arrive s) specs

let time = function Arrive s -> s.Flowgen.arrival_ns | Depart d -> d.time_ns

let events_sorted t = List.stable_sort (fun a b -> compare (time a) (time b)) t

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun ev ->
          match ev with
          | Arrive s ->
              Printf.fprintf oc "A %d %d %d %d %d %d\n" s.Flowgen.arrival_ns s.src s.dst s.size
                s.weight s.priority
          | Depart d -> Printf.fprintf oc "D %d %d\n" d.time_ns d.flow)
        t)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let acc = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.length line > 0 then
             acc :=
               (match String.split_on_char ' ' line with
               | [ "A"; a; s; d; sz; w; p ] ->
                   Arrive
                     {
                       Flowgen.arrival_ns = int_of_string a;
                       src = int_of_string s;
                       dst = int_of_string d;
                       size = int_of_string sz;
                       weight = int_of_string w;
                       priority = int_of_string p;
                     }
               | [ "D"; tm; f ] -> Depart { time_ns = int_of_string tm; flow = int_of_string f }
               | _ -> failwith ("Trace.load: malformed line: " ^ line))
               :: !acc
         done
       with
      | End_of_file -> ()
      | Failure _ as e -> raise e);
      List.rev !acc)

let active_at t at =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Arrive s when s.Flowgen.arrival_ns <= at -> acc + 1
      | Depart d when d.time_ns <= at -> acc - 1
      | Arrive _ | Depart _ -> acc)
    0 t
