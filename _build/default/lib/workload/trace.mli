(** Flow-trace recording and replay.

    Fig. 8 replays the flow arrival/departure events of a large simulation
    into the rate-computation benchmark; traces also make workloads
    portable across the simulator, the emulator and the benches. *)

type event = Arrive of Flowgen.spec | Depart of { time_ns : int; flow : int }

type t = event list
(** Events sorted by time; [Arrive] specs are implicitly numbered 0.. in
    arrival order, which is what [Depart.flow] refers to. *)

val of_specs : Flowgen.spec list -> t
(** Arrivals only. *)

val save : string -> t -> unit
(** Write to a file, one event per line. *)

val load : string -> t
(** Raises [Failure] on malformed input. *)

val events_sorted : t -> t
(** Stable sort by timestamp. *)

val active_at : t -> int -> int
(** Number of flows arrived but not departed at the given time. *)
