type t =
  | Uniform
  | Nearest_neighbor
  | Bit_complement
  | Transpose
  | Tornado
  | Permutation of int array

let name = function
  | Uniform -> "uniform"
  | Nearest_neighbor -> "nearest-neighbor"
  | Bit_complement -> "bit-complement"
  | Transpose -> "transpose"
  | Tornado -> "tornado"
  | Permutation _ -> "permutation"

let grid_dims topo =
  match Topology.kind topo with
  | Topology.Torus dims | Topology.Mesh dims -> dims
  | Topology.Flattened_butterfly k -> [| k; k |]
  | Topology.Clos _ | Topology.Custom _ ->
      invalid_arg "Pattern: topology has no coordinate system"

let of_permutation topo perm =
  let h = Topology.host_count topo in
  if Array.length perm <> h then invalid_arg "Pattern.Permutation: wrong length";
  let acc = ref [] in
  for s = h - 1 downto 0 do
    if perm.(s) <> s then acc := (s, perm.(s), 1.0) :: !acc
  done;
  !acc

let map_coords topo f =
  let dims = grid_dims topo in
  let h = Topology.host_count topo in
  Array.init h (fun s ->
      let c = Topology.coords topo s in
      let c' = f dims c in
      Topology.of_coords topo c')

let flows topo = function
  | Uniform ->
      let h = Topology.host_count topo in
      let d = 1.0 /. float_of_int (h - 1) in
      let acc = ref [] in
      for s = h - 1 downto 0 do
        for t = h - 1 downto 0 do
          if s <> t then acc := (s, t, d) :: !acc
        done
      done;
      !acc
  | Nearest_neighbor ->
      let h = Topology.host_count topo in
      let acc = ref [] in
      for s = h - 1 downto 0 do
        let out = Topology.out_links topo s in
        let d = 1.0 /. float_of_int (Array.length out) in
        Array.iter (fun (v, _) -> acc := (s, v, d) :: !acc) out
      done;
      !acc
  | Bit_complement ->
      of_permutation topo (map_coords topo (fun dims c -> Array.mapi (fun i x -> dims.(i) - 1 - x) c))
  | Transpose ->
      let dims = grid_dims topo in
      Array.iter
        (fun k -> if k <> dims.(0) then invalid_arg "Pattern.Transpose: unequal dimensions")
        dims;
      of_permutation topo
        (map_coords topo (fun _ c ->
             let n = Array.length c in
             Array.init n (fun i -> c.(n - 1 - i))))
  | Tornado ->
      let dims = grid_dims topo in
      let k = dims.(0) in
      let shift = ((k + 1) / 2) - 1 in
      if shift = 0 then invalid_arg "Pattern.Tornado: dimension too small";
      of_permutation topo
        (map_coords topo (fun _ c ->
             let c' = Array.copy c in
             c'.(0) <- (c.(0) + shift) mod k;
             c'))
  | Permutation perm -> of_permutation topo perm

let structured_adversaries topo =
  let h = Topology.host_count topo in
  let candidates = ref [] in
  let add p = try candidates := flows topo p :: !candidates with Invalid_argument _ -> () in
  add Tornado;
  add Bit_complement;
  add Transpose;
  (match Topology.kind topo with
  | Topology.Torus dims | Topology.Mesh dims ->
      (* Diagonal shifts: move by delta in every dimension at once. *)
      let kmax = Array.fold_left max 2 dims in
      for delta = 1 to kmax - 1 do
        let perm =
          Array.init h (fun s ->
              let c = Topology.coords topo s in
              let c' = Array.mapi (fun i x -> (x + delta) mod dims.(i)) c in
              Topology.of_coords topo c')
        in
        add (Permutation perm)
      done;
      (* Half-way shifts along each single dimension. *)
      Array.iteri
        (fun dim k ->
          let perm =
            Array.init h (fun s ->
                let c = Topology.coords topo s in
                let c' = Array.copy c in
                c'.(dim) <- (c.(dim) + (k / 2)) mod k;
                Topology.of_coords topo c')
          in
          add (Permutation perm))
        dims
  | Topology.Flattened_butterfly _ | Topology.Clos _ | Topology.Custom _ -> ());
  !candidates

let adversarial ctx p ~tries ~seed =
  let topo = Routing.topo ctx in
  let h = Topology.host_count topo in
  let rng = Util.Rng.create seed in
  let candidates =
    structured_adversaries topo
    @ List.init tries (fun _ -> of_permutation topo (Util.Rng.permutation rng h))
  in
  let evaluate fl = Congestion.Channel_load.capacity_fraction ctx p fl in
  match candidates with
  | [] -> invalid_arg "Pattern.adversarial: no candidate patterns"
  | first :: rest ->
      List.fold_left
        (fun (best_fl, best_v) fl ->
          let v = evaluate fl in
          if v < best_v then (fl, v) else (best_fl, best_v))
        (first, evaluate first) rest
