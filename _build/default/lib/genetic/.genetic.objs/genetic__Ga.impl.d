lib/genetic/ga.ml: Array Float List Util
