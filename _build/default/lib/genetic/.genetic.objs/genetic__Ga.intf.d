lib/genetic/ga.mli: Util
