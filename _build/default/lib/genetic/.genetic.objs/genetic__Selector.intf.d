lib/genetic/selector.mli: Routing Util
