lib/genetic/selector.ml: Array Congestion Float Ga Hashtbl List Option Routing Topology Util
