(** Generic genetic algorithm over fixed-length integer genotypes
    (paper §3.4).

    Genotypes are arrays of genes in [0, choices); fitness is maximized.
    Each generation keeps the elite, then fills the population with
    tournament-selected parents recombined by one-point crossover and
    mutated gene-wise. The search stops after [generations] rounds or
    [patience] generations without improvement. *)

type problem = {
  genes : int;  (** genotype length *)
  choices : int;  (** alphabet size per gene *)
  fitness : int array -> float;
}

val optimize :
  ?pop_size:int ->
  ?mutation:float ->
  ?elite:int ->
  ?generations:int ->
  ?patience:int ->
  ?seeds:int array list ->
  Util.Rng.t ->
  problem ->
  init:int array ->
  int array * float
(** Defaults match the paper's §5.2 setup: population 100, mutation 0.01.
    [init] seeds the population (the current routing assignment), along
    with any extra [seeds] (e.g. the uniform all-one-protocol assignments,
    which guarantees the result is never worse than those baselines).
    Returns the best genotype and its fitness. *)

(** {2 Baselines (§3.4 mentions these were considered and rejected)} *)

val hill_climb : ?iterations:int -> Util.Rng.t -> problem -> init:int array -> int array * float
(** Random single-gene moves, accepted when strictly improving. *)

val simulated_annealing :
  ?iterations:int -> ?t0:float -> ?cooling:float -> Util.Rng.t -> problem ->
  init:int array -> int array * float

val random_search : ?iterations:int -> Util.Rng.t -> problem -> int array * float
