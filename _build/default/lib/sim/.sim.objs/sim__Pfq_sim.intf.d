lib/sim/pfq_sim.mli: Topology Workload
