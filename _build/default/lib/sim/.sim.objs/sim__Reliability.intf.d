lib/sim/reliability.mli: Engine
