lib/sim/net.ml: Array Broadcast Engine List Queue Topology
