lib/sim/net.mli: Broadcast Engine Topology
