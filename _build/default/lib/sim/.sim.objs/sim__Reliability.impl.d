lib/sim/reliability.ml: Array Engine Util
