lib/sim/tcp_sim.ml: Array Engine Float Hashtbl List Metrics Net Printf Routing Wire Workload
