lib/sim/r2c2_sim.mli: Engine Metrics Routing Topology Workload
