lib/sim/r2c2_sim.ml: Array Broadcast Congestion Engine Float Genetic Hashtbl List Metrics Net Option Routing Topology Util Wire Workload
