lib/sim/tcp_sim.mli: Metrics Topology Workload
