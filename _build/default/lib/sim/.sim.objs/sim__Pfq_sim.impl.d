lib/sim/pfq_sim.ml: Array Congestion Float List Option Routing Topology Util Workload
