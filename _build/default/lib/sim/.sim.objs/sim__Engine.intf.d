lib/sim/engine.mli:
