(** Discrete-event simulation engine.

    Time is integer nanoseconds. Events scheduled for the same instant fire
    in scheduling order, making runs deterministic. *)

type t

val create : unit -> t

val now : t -> int
(** Current simulation time in ns. *)

val at : t -> int -> (unit -> unit) -> unit
(** Schedule a thunk at an absolute time (>= now). *)

val after : t -> int -> (unit -> unit) -> unit
(** Schedule a thunk [delay] ns from now. *)

val run : ?until:int -> t -> unit
(** Process events in time order until the queue empties or the clock
    passes [until]. *)

val pending : t -> int
(** Number of scheduled events; for tests. *)
