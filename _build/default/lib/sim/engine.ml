type t = { mutable now : int; q : (unit -> unit) Util.Heap.t }

let create () = { now = 0; q = Util.Heap.create () }

let now t = t.now

let at t time thunk =
  if time < t.now then invalid_arg "Engine.at: time in the past";
  Util.Heap.push t.q time thunk

let after t delay thunk =
  if delay < 0 then invalid_arg "Engine.after: negative delay";
  Util.Heap.push t.q (t.now + delay) thunk

let run ?until t =
  let stop = ref false in
  while not !stop do
    match Util.Heap.peek t.q with
    | None -> stop := true
    | Some (time, _) -> (
        match until with
        | Some u when time > u ->
            t.now <- u;
            stop := true
        | _ -> (
            match Util.Heap.pop t.q with
            | None -> stop := true
            | Some (time, thunk) ->
                t.now <- time;
                thunk ()))
  done

let pending t = Util.Heap.size t.q
