(** Packet-level simulation of the R2C2 stack (paper §3, §5.2).

    Senders pace each flow with a token bucket at its allocated rate and
    source route every packet. Flow start/finish events travel as real
    16-byte broadcast packets over per-source spanning trees; once a flow's
    start broadcast has reached every node it joins the global rate
    computation, which runs periodically every [recompute_interval_ns]
    (§3.3.2). Until then the flow sends into the bandwidth headroom.

    Two entry points: {!run} simulates a pre-generated workload;
    {!create}/{!start_flow}/{!run_engine} expose the simulator as a handle
    so applications can start flows dynamically (e.g. an RPC server
    answering requests mid-simulation). *)

type control =
  | Global_epoch
      (** one rate computation per epoch over the globally-visible flow set,
          applied at every sender — a fast, faithful approximation (views
          diverge for less than a broadcast time, far below rho) *)
  | Per_node
      (** the paper's literal design: every sender maintains its own view of
          the traffic matrix from the broadcast packets it receives and runs
          its own water-filling for its own flows *)

type config = {
  link_gbps : float;
  hop_latency_ns : int;
  headroom : float;
  recompute_interval_ns : int;
  mtu : int;  (** wire bytes per data packet, header included *)
  trees_per_source : int;
  real_broadcast : bool;
      (** if false, visibility is modeled as tree-depth latency and no
          broadcast packets enter the fabric *)
  queue_capacity : int;  (** bytes per output queue; [max_int] = unbounded *)
  control : control;
  reselect_interval_ns : int option;
      (** §3.4: when set, flows alive for at least one interval are
          periodically re-assigned RPS or VLB by the GA routing selector,
          and the new assignment is advertised in one batched broadcast *)
  seed : int;
}

val default_config : config
(** 10 Gbps, 100 ns hops, 5% headroom, rho = 500 µs, 1500-byte MTU, real
    broadcasts, unbounded queues, global-epoch control, seed 1. *)

type result = {
  metrics : Metrics.t;
  max_queue : int array;  (** per-link peak occupancy, bytes *)
  drops : int;
  data_wire_bytes : float;
  control_wire_bytes : float;
  recomputes : int;  (** rate recomputation rounds executed *)
  rate_updates : (int * float) list;  (** (time ns, allocated rate Gbps) samples *)
  reselections : int;  (** §3.4 routing-reselection rounds executed *)
  flows_rerouted : int;  (** flows whose protocol a reselection changed *)
}

(** {2 Handle API — dynamic workloads} *)

type t

val create : config -> Topology.t -> t
(** A fresh rack simulation at time 0. *)

val engine : t -> Engine.t
(** The simulation clock; use [Engine.at]/[Engine.after] to script events
    (e.g. future {!start_flow} calls). *)

val metrics : t -> Metrics.t
val topology : t -> Topology.t

val start_flow :
  ?weight:int ->
  ?priority:int ->
  ?protocol:Routing.protocol ->
  ?demand_gbps:float ->
  ?on_complete:(int -> unit) ->
  t ->
  src:int ->
  dst:int ->
  size:int ->
  int
(** Open a flow {e at the current simulation time}: broadcasts the start
    event and begins transmitting immediately (§3.3.2). [demand_gbps]
    marks a host-limited flow; [on_complete] fires (with the flow id) when
    the last byte is delivered. Returns the flow id. *)

val run_engine : ?until_ns:int -> t -> unit
(** Process events until the rack goes idle (or [until_ns]). Can be called
    repeatedly as more flows are scripted. *)

val results : t -> result
(** Snapshot of the statistics so far. *)

(** {2 Batch API — pre-generated workloads} *)

val run :
  ?protocol_of:(int -> Workload.Flowgen.spec -> Routing.protocol) ->
  ?demand_of:(int -> Workload.Flowgen.spec -> float option) ->
  ?until_ns:int ->
  config ->
  Topology.t ->
  Workload.Flowgen.spec list ->
  result
(** Simulate the flow list (sorted by arrival) to completion (or
    [until_ns]); flow ids equal list positions. [protocol_of] chooses each
    flow's routing protocol from its index and spec (default RPS for
    everything); [demand_of] marks host-limited flows with their maximum
    rate in Gbps (§3.3.2) — such a flow never injects above its demand and
    the rate computation hands its unused share to others. *)
