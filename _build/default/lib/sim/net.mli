(** Packet-level network fabric.

    Every directed link has a FIFO output queue at its source node, a
    serialization rate and a propagation delay. Packets are source routed:
    they carry their full vertex path and a hop index, so intermediate
    nodes forward without any per-flow state (paper §3.5).

    Broadcast packets carry a [(source, tree)] pair instead of a path and
    are replicated to the tree children at every node (paper §3.2). *)

type kind =
  | Data of { flow : int; seq : int; last : bool }
  | Ack of { flow : int; ackno : int }
  | Bcast of { bcast_id : int; root : int; tree : int }

type packet = {
  kind : kind;
  bytes : int;  (** wire size, header included *)
  route : int array;  (** vertex path for Data/Ack; [||] for Bcast *)
  mutable hop : int;  (** next index into [route] *)
}

type t

val create :
  Engine.t ->
  Topology.t ->
  ?queue_capacity:int ->
  ?count_control:bool ->
  link_gbps:float ->
  hop_latency_ns:int ->
  unit ->
  t
(** [queue_capacity] bounds each output queue in bytes (tail drop);
    default unbounded. [count_control] (default true) includes broadcast
    bytes in the control-traffic counters. *)

val topo : t -> Topology.t
val engine : t -> Engine.t

val on_deliver : t -> (packet -> unit) -> unit
(** Called when a Data/Ack packet reaches the end of its route. *)

val on_bcast_deliver : t -> (packet -> node:int -> unit) -> unit
(** Called at {e every} vertex (including relays) receiving a broadcast
    copy, excluding the root itself. *)

val on_drop : t -> (packet -> unit) -> unit

val set_broadcast : t -> Broadcast.t -> unit
(** Required before sending broadcast packets. *)

val send : t -> packet -> unit
(** Inject a source-routed packet at [route.(hop)]; [hop] must point at the
    current node (normally 0). *)

val send_bcast : t -> root:int -> tree:int -> bcast_id:int -> bytes:int -> unit
(** Inject a broadcast at its root; copies fan out along the tree. *)

val tx_time_ns : t -> int -> int
(** Serialization time of a packet of the given byte size. *)

val max_queue_bytes : t -> int array
(** Per-link maximum queue occupancy observed (bytes). *)

val drops : t -> int
val data_bytes_on_wire : t -> float
(** Total bytes * hops carried for Data/Ack packets. *)

val control_bytes_on_wire : t -> float
(** Total bytes * hops carried for broadcast packets. *)

val reset_wire_counters : t -> unit
