type kind =
  | Data of { flow : int; seq : int; last : bool }
  | Ack of { flow : int; ackno : int }
  | Bcast of { bcast_id : int; root : int; tree : int }

type packet = {
  kind : kind;
  bytes : int;
  route : int array;
  mutable hop : int;
}

type link_state = {
  q : packet Queue.t;
  mutable busy : bool;
  mutable qbytes : int;
  mutable max_qbytes : int;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  links : link_state array;
  queue_capacity : int;
  count_control : bool;
  bits_per_ns : float;
  hop_latency_ns : int;
  mutable broadcast : Broadcast.t option;
  mutable deliver : packet -> unit;
  mutable bcast_deliver : packet -> node:int -> unit;
  mutable drop : packet -> unit;
  mutable drops : int;
  mutable data_wire : float;
  mutable control_wire : float;
}

let create engine topo ?(queue_capacity = max_int) ?(count_control = true) ~link_gbps
    ~hop_latency_ns () =
  if link_gbps <= 0.0 then invalid_arg "Net.create: link_gbps";
  {
    engine;
    topo;
    links =
      Array.init (Topology.link_count topo) (fun _ ->
          { q = Queue.create (); busy = false; qbytes = 0; max_qbytes = 0 });
    queue_capacity;
    count_control;
    bits_per_ns = link_gbps;
    hop_latency_ns;
    broadcast = None;
    deliver = ignore;
    bcast_deliver = (fun _ ~node:_ -> ());
    drop = ignore;
    drops = 0;
    data_wire = 0.0;
    control_wire = 0.0;
  }

let topo t = t.topo
let engine t = t.engine
let on_deliver t f = t.deliver <- f
let on_bcast_deliver t f = t.bcast_deliver <- f
let on_drop t f = t.drop <- f
let set_broadcast t b = t.broadcast <- Some b

let tx_time_ns t bytes =
  int_of_float (ceil (float_of_int (8 * bytes) /. t.bits_per_ns))

let count_wire t pkt =
  match pkt.kind with
  | Data _ | Ack _ -> t.data_wire <- t.data_wire +. float_of_int pkt.bytes
  | Bcast _ ->
      if t.count_control then t.control_wire <- t.control_wire +. float_of_int pkt.bytes

(* Forwarding is mutually recursive with arrival: an arriving packet is
   re-enqueued towards its next hop. *)
let rec start_tx t link_id =
  let ls = t.links.(link_id) in
  match Queue.peek_opt ls.q with
  | None -> ls.busy <- false
  | Some pkt ->
      ls.busy <- true;
      let tx = tx_time_ns t pkt.bytes in
      Engine.after t.engine tx (fun () ->
          let pkt = Queue.pop ls.q in
          ls.qbytes <- ls.qbytes - pkt.bytes;
          (* Serialization of the next packet overlaps propagation. *)
          start_tx t link_id;
          Engine.after t.engine t.hop_latency_ns (fun () ->
              arrive t (Topology.link_dst t.topo link_id) pkt))

and enqueue_link t link_id pkt =
  let ls = t.links.(link_id) in
  if ls.qbytes + pkt.bytes > t.queue_capacity then begin
    t.drops <- t.drops + 1;
    t.drop pkt
  end
  else begin
    Queue.push pkt ls.q;
    ls.qbytes <- ls.qbytes + pkt.bytes;
    if ls.qbytes > ls.max_qbytes then ls.max_qbytes <- ls.qbytes;
    if not ls.busy then start_tx t link_id
  end

and arrive t node pkt =
  count_wire t pkt;
  match pkt.kind with
  | Bcast { root; tree; _ } ->
      t.bcast_deliver pkt ~node;
      forward_bcast t ~root ~tree ~from:node ~bytes:pkt.bytes ~kind:pkt.kind
  | Data _ | Ack _ ->
      pkt.hop <- pkt.hop + 1;
      assert (pkt.route.(pkt.hop) = node);
      if pkt.hop = Array.length pkt.route - 1 then t.deliver pkt
      else begin
        match Topology.find_link t.topo node pkt.route.(pkt.hop + 1) with
        | Some l -> enqueue_link t l pkt
        | None -> invalid_arg "Net: route crosses non-adjacent vertices"
      end

and forward_bcast t ~root ~tree ~from ~bytes ~kind =
  let b =
    match t.broadcast with
    | Some b -> b
    | None -> invalid_arg "Net: broadcast FIB not configured"
  in
  List.iter
    (fun child ->
      match Topology.find_link t.topo from child with
      | Some l -> enqueue_link t l { kind; bytes; route = [||]; hop = 0 }
      | None -> assert false)
    (Broadcast.children b ~src:root ~tree from)

let send t pkt =
  let len = Array.length pkt.route in
  if len < 2 then invalid_arg "Net.send: route needs at least two vertices";
  let node = pkt.route.(pkt.hop) in
  match Topology.find_link t.topo node pkt.route.(pkt.hop + 1) with
  | Some l -> enqueue_link t l pkt
  | None -> invalid_arg "Net.send: route crosses non-adjacent vertices"

let send_bcast t ~root ~tree ~bcast_id ~bytes =
  forward_bcast t ~root ~tree ~from:root ~bytes ~kind:(Bcast { bcast_id; root; tree })

let max_queue_bytes t = Array.map (fun ls -> ls.max_qbytes) t.links
let drops t = t.drops
let data_bytes_on_wire t = t.data_wire
let control_bytes_on_wire t = t.control_wire

let reset_wire_counters t =
  t.data_wire <- 0.0;
  t.control_wire <- 0.0
