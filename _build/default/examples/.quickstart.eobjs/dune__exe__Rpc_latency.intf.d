examples/rpc_latency.mli:
