examples/quickstart.mli:
