examples/quickstart.ml: Array Bytes Format List R2c2 Routing String Topology Util Wire
