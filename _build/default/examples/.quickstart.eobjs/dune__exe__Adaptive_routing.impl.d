examples/adaptive_routing.ml: Array Format Genetic List R2c2 Routing Topology Util Wire Workload
