examples/tenant_isolation.mli:
