examples/datacenter_mix.ml: Array Format Sim Topology Util Workload
