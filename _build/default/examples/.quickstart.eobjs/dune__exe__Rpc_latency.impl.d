examples/rpc_latency.ml: Array Format Sim Topology Util
