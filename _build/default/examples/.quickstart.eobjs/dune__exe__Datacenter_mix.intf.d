examples/datacenter_mix.mli:
