examples/tenant_isolation.ml: Format R2c2 Topology
