examples/failure_recovery.ml: Array Broadcast Format List R2c2 String Topology Util Wire
