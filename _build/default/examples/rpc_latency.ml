(* RPC over R2C2: the dynamic simulator API drives a request/response
   application — clients fire small requests at servers, each server
   answers with a larger response *when the request arrives*, and we
   measure end-to-end RPC latency while elephant background flows compete
   for the fabric.

   This is the latency-sensitive "rack-scale application" traffic the
   paper's goals G2/G3 are about: RPCs must cut through the elephants'
   bandwidth without queueing behind them.

   Run with: dune exec examples/rpc_latency.exe *)

let () =
  let topo = Topology.torus [| 4; 4; 4 |] in
  let cfg = Sim.R2c2_sim.default_config in
  let sim = Sim.R2c2_sim.create cfg topo in
  let eng = Sim.R2c2_sim.engine sim in
  let rng = Util.Rng.create 42 in

  (* Background elephants: eight long transfers between random pairs. *)
  let hosts = Topology.host_count topo in
  Format.printf "rack: %a; starting 8 background elephants@." Topology.pp topo;
  Sim.Engine.at eng 0 (fun () ->
      for _ = 1 to 8 do
        let src = Util.Rng.int rng hosts in
        let dst = (src + 1 + Util.Rng.int rng (hosts - 1)) mod hosts in
        ignore (Sim.R2c2_sim.start_flow sim ~src ~dst ~size:20_000_000)
      done);

  (* RPC workload: 200 requests (2 KB) at Poisson 20 µs spacing; the server
     responds with 64 KB the moment the request completes. *)
  let rpc_latencies = ref [] in
  let pending = ref 0 in
  let request_at t_ns client server =
    Sim.Engine.at eng t_ns (fun () ->
        incr pending;
        let t0 = Sim.Engine.now eng in
        ignore
          (Sim.R2c2_sim.start_flow sim ~src:client ~dst:server ~size:2_000
             ~on_complete:(fun _ ->
               (* The server answers as soon as it has the request. *)
               ignore
                 (Sim.R2c2_sim.start_flow sim ~src:server ~dst:client ~size:64_000
                    ~on_complete:(fun _ ->
                      decr pending;
                      rpc_latencies :=
                        (float_of_int (Sim.Engine.now eng - t0) /. 1000.0) :: !rpc_latencies)))))
  in
  let t = ref 0.0 in
  for _ = 1 to 200 do
    t := !t +. Util.Rng.exponential rng ~mean:20_000.0;
    let client = Util.Rng.int rng hosts in
    let server = (client + 1 + Util.Rng.int rng (hosts - 1)) mod hosts in
    request_at (int_of_float !t) client server
  done;

  Sim.R2c2_sim.run_engine sim;
  let res = Sim.R2c2_sim.results sim in
  let lat = Array.of_list !rpc_latencies in
  Format.printf "completed %d RPCs (%d still pending), %d total flows@." (Array.length lat)
    !pending
    (Sim.Metrics.completed_count res.Sim.R2c2_sim.metrics);
  Format.printf "RPC latency: p50 %.1f us, p95 %.1f us, p99 %.1f us@."
    (Util.Stats.percentile lat 50.0) (Util.Stats.percentile lat 95.0)
    (Util.Stats.percentile lat 99.0);
  let q = Array.map (fun b -> float_of_int b /. 1024.0) res.Sim.R2c2_sim.max_queue in
  Format.printf "max queue under elephants: median %.1f KB, p99 %.1f KB@."
    (Util.Stats.percentile q 50.0) (Util.Stats.percentile q 99.0)
